//! The six-phase compilation pipeline (paper §5.1):
//! (1) parsing → (2) normalization → (3) semantic analysis →
//! (4) rewrite (constant folding) → (5) translation into the algebra →
//! (6) code generation.
//!
//! Phases 1–4 live in the `xpath-syntax` crate (normalization runs lazily
//! per predicate during translation); phase 5 is [`crate::translate`];
//! phase 6 (physical plan + NVM assembly) is the `nqe` crate.

use std::time::Instant;

use xmlstore::StoreStats;
use xpath_syntax::{analyze, fold::fold, frontend, parse, Expr, FrontendError};

use crate::cost::{self, Decision, OptimizerTrace};
use crate::options::{CostMode, TranslateOptions};
use crate::trace::{record_fired_rewrites, QueryTrace};
use crate::translate::{translate, CompileError, CompiledQuery};

/// Any error of the compilation pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineError {
    /// Parsing or semantic analysis failed.
    Frontend(FrontendError),
    /// Translation into the algebra failed.
    Translate(CompileError),
    /// Execution was stopped by the resource governor (memory/tuple
    /// budget, deadline, or cancellation) — carried here so governed
    /// end-to-end entry points report one flat error type.
    Resource(algebra::QueryError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Frontend(e) => write!(f, "{e}"),
            PipelineError::Translate(e) => write!(f, "{e}"),
            PipelineError::Resource(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<FrontendError> for PipelineError {
    fn from(e: FrontendError) -> Self {
        PipelineError::Frontend(e)
    }
}

impl From<CompileError> for PipelineError {
    fn from(e: CompileError) -> Self {
        PipelineError::Translate(e)
    }
}

impl From<algebra::QueryError> for PipelineError {
    fn from(e: algebra::QueryError) -> Self {
        PipelineError::Resource(e)
    }
}

/// Compile a query string into the logical algebra.
pub fn compile(query: &str, opts: &TranslateOptions) -> Result<CompiledQuery, PipelineError> {
    let ast = frontend(query)?;
    Ok(translate(&ast, opts)?)
}

/// Compile an already-analyzed AST (used when the caller wants to inspect
/// or transform the AST between phases).
pub fn compile_ast(ast: &Expr, opts: &TranslateOptions) -> Result<CompiledQuery, PipelineError> {
    Ok(translate(ast, opts)?)
}

/// Does the cost-based optimizer pass run for this (options, stats)
/// pair? `CostMode::Off` and stat-less stores (fingerprint 0 — no
/// structural index) both degrade to the exact [`compile`] path.
pub fn cost_active(opts: &TranslateOptions, stats: Option<&StoreStats>) -> bool {
    opts.optimize == CostMode::CostBased && stats.is_some_and(|s| s.fingerprint != 0)
}

/// Compile with document statistics: like [`compile`], plus the
/// cost-based optimizer pass between translation and property pruning
/// when [`cost_active`]. Returns the optimizer's record alongside the
/// plan (`None` when the pass did not run, in which case the produced
/// plan is byte-identical to [`compile`]'s).
pub fn compile_with_stats(
    query: &str,
    opts: &TranslateOptions,
    stats: Option<&StoreStats>,
) -> Result<(CompiledQuery, Option<OptimizerTrace>), PipelineError> {
    let ast = frontend(query)?;
    compile_ast_with_stats(&ast, opts, stats)
}

/// AST-level variant of [`compile_with_stats`].
pub fn compile_ast_with_stats(
    ast: &Expr,
    opts: &TranslateOptions,
    stats: Option<&StoreStats>,
) -> Result<(CompiledQuery, Option<OptimizerTrace>), PipelineError> {
    if !cost_active(opts, stats) {
        return Ok((translate(ast, opts)?, None));
    }
    let stats = stats.expect("cost_active implies stats");
    // Factor prune/parallelize out of translation (the same split
    // compile_traced uses, with the same tested equivalence) so the
    // optimizer sees the raw translated plan.
    let unpruned = TranslateOptions { prune_properties: false, threads: 1, ..*opts };
    let compiled = translate(ast, &unpruned)?;
    let (compiled, trace) = optimize_phase(ast, compiled, opts, stats)?;
    let compiled = if opts.prune_properties {
        match compiled {
            CompiledQuery::Sequence(plan) => {
                CompiledQuery::Sequence(crate::properties::prune(plan))
            }
            CompiledQuery::Scalar(expr) => {
                CompiledQuery::Scalar(crate::properties::prune_scalar_expr(expr))
            }
        }
    } else {
        compiled
    };
    let compiled = match compiled {
        CompiledQuery::Sequence(plan) => {
            CompiledQuery::Sequence(crate::properties::parallelize(plan, opts.threads).0)
        }
        CompiledQuery::Scalar(expr) => {
            CompiledQuery::Scalar(crate::properties::parallelize_scalar(expr, opts.threads).0)
        }
    };
    Ok((compiled, Some(trace)))
}

/// The cost-based optimizer phase: per-site rewrites over the translated
/// plan, plus the whole-query outer-shape decision (stacked §4.2.1 vs.
/// canonical d-join §3), which needs the AST to translate the
/// alternative.
fn optimize_phase(
    ast: &Expr,
    compiled: CompiledQuery,
    opts: &TranslateOptions,
    stats: &StoreStats,
) -> Result<(CompiledQuery, OptimizerTrace), PipelineError> {
    let (best, mut decisions) = cost::optimize(compiled, stats);
    let (best, decisions) = if opts.stacked_outer {
        let alt_opts = TranslateOptions {
            stacked_outer: false,
            prune_properties: false,
            threads: 1,
            ..*opts
        };
        let alt = translate(ast, &alt_opts)?;
        let (alt, alt_decisions) = cost::optimize(alt, stats);
        let est_stacked = cost::estimate_total(&best, stats);
        let est_djoin = cost::estimate_total(&alt, stats);
        if est_djoin < est_stacked {
            let mut decisions = alt_decisions;
            decisions.push(Decision {
                site: "outer path".to_owned(),
                rule: "outer-shape",
                choice: "d-join",
                est_chosen: est_djoin,
                est_rejected: est_stacked,
            });
            (alt, decisions)
        } else {
            decisions.push(Decision {
                site: "outer path".to_owned(),
                rule: "outer-shape",
                choice: "stacked",
                est_chosen: est_stacked,
                est_rejected: est_djoin,
            });
            (best, decisions)
        }
    } else {
        (best, decisions)
    };
    Ok((best, OptimizerTrace { stats_fingerprint: stats.fingerprint, decisions }))
}

/// Compile with per-phase tracing: each pipeline phase is timed
/// separately, fired rewrites are recorded and the final plan's
/// statistics captured. Produces the same query as [`compile`]; the
/// property-pruning extension runs as its own timed phase so its cost
/// and effect are visible.
pub fn compile_traced(
    query: &str,
    opts: &TranslateOptions,
) -> Result<(CompiledQuery, QueryTrace), PipelineError> {
    compile_traced_with_stats(query, opts, None)
}

/// [`compile_traced`] with document statistics: when [`cost_active`],
/// the optimizer runs as its own timed `optimize` phase and its record
/// lands in [`QueryTrace::optimizer`]. Produces the same query as
/// [`compile_with_stats`].
pub fn compile_traced_with_stats(
    query: &str,
    opts: &TranslateOptions,
    stats: Option<&StoreStats>,
) -> Result<(CompiledQuery, QueryTrace), PipelineError> {
    let mut trace = QueryTrace { query: query.to_owned(), ..QueryTrace::default() };

    let t0 = Instant::now();
    let ast = parse(query).map_err(FrontendError::from)?;
    trace.add_phase("parse", t0.elapsed().as_nanos() as u64);

    let t0 = Instant::now();
    let typed = analyze(ast).map_err(FrontendError::from)?;
    trace.add_phase("semantic", t0.elapsed().as_nanos() as u64);

    let t0 = Instant::now();
    let before = typed.to_string();
    let folded = fold(typed);
    if folded.to_string() != before {
        trace.rewrites.push("constant-fold".to_owned());
    }
    trace.add_phase("fold", t0.elapsed().as_nanos() as u64);

    // Translate with the pruning extension and the parallelize pass
    // factored out so each can be timed as its own phase (normalization
    // runs lazily per predicate inside translation, per §5.1).
    let unpruned_opts = TranslateOptions { prune_properties: false, threads: 1, ..*opts };
    let t0 = Instant::now();
    let compiled = translate(&folded, &unpruned_opts)?;
    trace.add_phase("translate", t0.elapsed().as_nanos() as u64);

    trace.record_plan(&compiled);
    let compiled = if cost_active(opts, stats) {
        let stats = stats.expect("cost_active implies stats");
        let t0 = Instant::now();
        let (optimized, opt_trace) = optimize_phase(&folded, compiled, opts, stats)?;
        trace.add_phase("optimize", t0.elapsed().as_nanos() as u64);
        trace.optimizer = Some(opt_trace);
        trace.record_plan(&optimized);
        optimized
    } else {
        compiled
    };
    let compiled = if opts.prune_properties {
        let ops_before = trace.plan_ops;
        let t0 = Instant::now();
        let mut pruned_labels = Vec::new();
        let pruned = match compiled {
            CompiledQuery::Sequence(plan) => CompiledQuery::Sequence(
                crate::properties::prune_with_report(plan, &mut pruned_labels),
            ),
            CompiledQuery::Scalar(expr) => CompiledQuery::Scalar(
                crate::properties::prune_scalar_expr_with_report(expr, &mut pruned_labels),
            ),
        };
        trace.add_phase("prune", t0.elapsed().as_nanos() as u64);
        trace.record_plan(&pruned);
        trace.pruned_ops = ops_before.saturating_sub(trace.plan_ops);
        trace.pruned_labels = pruned_labels;
        if trace.pruned_ops > 0 {
            trace.rewrites.push(format!("property-prune (-{} ops)", trace.pruned_ops));
        }
        pruned
    } else {
        compiled
    };
    let compiled = if opts.threads > 1 {
        let t0 = Instant::now();
        let inserted;
        let parallel = match compiled {
            CompiledQuery::Sequence(plan) => {
                let (plan, n) = crate::properties::parallelize(plan, opts.threads);
                inserted = n;
                CompiledQuery::Sequence(plan)
            }
            CompiledQuery::Scalar(expr) => {
                let (expr, n) = crate::properties::parallelize_scalar(expr, opts.threads);
                inserted = n;
                CompiledQuery::Scalar(expr)
            }
        };
        trace.add_phase("parallelize", t0.elapsed().as_nanos() as u64);
        trace.record_plan(&parallel);
        if inserted > 0 {
            trace.rewrites.push(format!("parallelize ×{inserted}"));
        }
        parallel
    } else {
        compiled
    };
    record_fired_rewrites(&mut trace, &compiled);
    Ok((compiled, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::explain::explain;
    use algebra::LogicalOp;

    fn seq(query: &str, opts: &TranslateOptions) -> LogicalOp {
        match compile(query, opts).unwrap_or_else(|e| panic!("compile `{query}`: {e}")) {
            CompiledQuery::Sequence(p) => p,
            CompiledQuery::Scalar(s) => panic!("expected sequence plan, got scalar {s}"),
        }
    }

    fn scal(query: &str, opts: &TranslateOptions) -> algebra::ScalarExpr {
        match compile(query, opts).unwrap() {
            CompiledQuery::Scalar(s) => s,
            CompiledQuery::Sequence(p) => panic!("expected scalar, got plan\n{}", explain(&p)),
        }
    }

    #[test]
    fn canonical_path_is_djoin_chain_fig2() {
        // Fig. 2 shape: Π^D(χ_cn(… <Υ><Υ>…)).
        let plan = seq("/a/b", &TranslateOptions::canonical());
        let text = explain(&plan);
        assert!(text.contains("Π^D[cn]"), "{text}");
        assert!(text.contains("<>"), "{text}");
        assert_eq!(text.matches("Υ[").count(), 2, "{text}");
        assert!(text.contains("root("), "{text}");
    }

    #[test]
    fn improved_outer_path_is_stacked_fig3() {
        // Fig. 3 shape: linear operator stack, no d-joins.
        let plan = seq("/a/descendant::b/c", &TranslateOptions::improved());
        let text = explain(&plan);
        assert!(!text.contains("<>"), "stacked translation must not use d-joins:\n{text}");
        assert_eq!(text.matches("Υ[").count(), 3, "{text}");
        // descendant is ppd → a pushed-down dedup besides the final one.
        assert!(text.matches("Π^D").count() >= 2, "{text}");
    }

    #[test]
    fn canonical_has_single_final_dedup() {
        let plan = seq("/a/descendant::b/c", &TranslateOptions::canonical());
        let text = explain(&plan);
        assert_eq!(text.matches("Π^D").count(), 1, "{text}");
    }

    #[test]
    fn positional_predicate_adds_counter() {
        let plan = seq("/a/b[position() = 2]", &TranslateOptions::improved());
        let text = explain(&plan);
        assert!(text.contains("counter++"), "{text}");
        assert!(!text.contains("Tmp^cs"), "no last() → no Tmp^cs:\n{text}");
    }

    #[test]
    fn last_predicate_adds_tmpcs() {
        let plan = seq("/a/b[position() = last()]", &TranslateOptions::improved());
        let text = explain(&plan);
        assert!(text.contains("counter++"), "{text}");
        assert!(text.contains("Tmp^cs"), "{text}");
        // Stacked translation: grouped by the input context attribute.
        assert!(text.contains("by c"), "{text}");
    }

    #[test]
    fn canonical_last_predicate_ungrouped() {
        let plan = seq("/a/b[last()]", &TranslateOptions::canonical());
        let text = explain(&plan);
        assert!(text.contains("Tmp^cs[cs"), "{text}");
        assert!(!text.contains(" by "), "canonical Tmp^cs has no group attr:\n{text}");
    }

    #[test]
    fn nested_path_predicate_rebinds_cn_and_memoizes() {
        let plan = seq(
            "/a/descendant::b[count(descendant::c/following::*) = 1000]",
            &TranslateOptions::improved(),
        );
        let text = explain(&plan);
        assert!(text.contains("Π[cn:"), "cn rebinding expected:\n{text}");
        assert!(text.contains("𝔐["), "MemoX expected for inner path:\n{text}");
        assert!(text.contains("χ^mat"), "expensive clause memoised:\n{text}");
    }

    #[test]
    fn canonical_no_memox() {
        let plan = seq(
            "/a/descendant::b[count(descendant::c/following::*) = 1000]",
            &TranslateOptions::canonical(),
        );
        let text = explain(&plan);
        assert!(!text.contains("𝔐["), "{text}");
        assert!(!text.contains("χ^mat"), "{text}");
    }

    #[test]
    fn union_concat_dedup() {
        let plan = seq("/a/b | /a/c", &TranslateOptions::improved());
        let text = explain(&plan);
        assert!(text.contains("⊕"), "{text}");
        assert!(text.contains("Π^D[u"), "{text}");
    }

    #[test]
    fn filter_with_positional_sorts() {
        let plan = seq("(/a/b | /a/c)[2]", &TranslateOptions::improved());
        let text = explain(&plan);
        assert!(text.contains("Sort["), "{text}");
        assert!(text.contains("counter++"), "{text}");
    }

    #[test]
    fn filter_without_positional_does_not_sort() {
        let plan = seq("(/a/b | /a/c)[@x = '1']", &TranslateOptions::improved());
        let text = explain(&plan);
        assert!(!text.contains("Sort["), "{text}");
    }

    #[test]
    fn scalar_count_query() {
        let s = scal("count(/a/b)", &TranslateOptions::improved());
        let text = s.to_string();
        assert!(text.contains("𝔄[Count"), "{text}");
    }

    #[test]
    fn nodeset_equality_uses_semijoin() {
        let plan = seq("/r/a[b = c]", &TranslateOptions::improved());
        let text = explain(&plan);
        assert!(text.contains("⋉["), "{text}");
    }

    #[test]
    fn nodeset_relational_uses_min_max() {
        let s = scal("/a/b < /a/c", &TranslateOptions::improved());
        // Top-level comparison is boolean → scalar.
        let text = format!("{s}");
        assert!(text.contains("𝔄[Exists"), "{text}");
        // Max aggregate appears within the nested plan's selection.
        let plan_text = match &s {
            algebra::ScalarExpr::Agg(a) => explain(&a.plan),
            other => panic!("{other}"),
        };
        assert!(plan_text.contains("𝔄[Max"), "{plan_text}");
    }

    #[test]
    fn id_translation_tokenizes_and_derefs() {
        let plan = seq("id('a b c')", &TranslateOptions::improved());
        let text = explain(&plan);
        assert!(text.contains("tokenize"), "{text}");
        assert!(text.contains("deref"), "{text}");
    }

    #[test]
    fn id_of_nodeset() {
        let plan = seq("id(/a/b)", &TranslateOptions::improved());
        let text = explain(&plan);
        assert!(text.contains("tokenize"), "{text}");
        assert!(text.contains("deref"), "{text}");
    }

    #[test]
    fn absolute_inner_path_is_stacked() {
        let plan = seq("/a/b[/r/c]", &TranslateOptions::improved());
        let text = explain(&plan);
        // The inner absolute path appears under a (nested) marker without
        // d-joins of its own.
        let nested_start = text.find("(nested)").expect("nested plan rendered");
        assert!(!text[nested_start..].contains("<>"), "{text}");
    }

    #[test]
    fn relative_inner_path_keeps_djoin_shape() {
        let plan = seq("/a/b[descendant::c/following::d]", &TranslateOptions::improved());
        let text = explain(&plan);
        let nested_start = text.find("(nested)").expect("nested plan rendered");
        assert!(text[nested_start..].contains("<>"), "{text}");
    }

    #[test]
    fn fig4_combined_shape() {
        // Fig. 4: /a1::t1/a2::t2[a4::t4/a5::t5][position()=last()]/a3::t3
        let plan = seq(
            "/descendant::a[child::b/child::c][position() = last()]/child::d",
            &TranslateOptions::improved(),
        );
        let text = explain(&plan);
        assert!(text.contains("Tmp^cs"), "{text}");
        assert!(text.contains("counter++"), "{text}");
        assert!(text.contains("(nested)"), "{text}");
        assert!(text.contains("Π[cn:"), "{text}");
    }

    #[test]
    fn scalar_queries() {
        assert!(matches!(
            compile("1 + 2", &TranslateOptions::improved()).unwrap(),
            CompiledQuery::Scalar(_)
        ));
        assert!(matches!(
            compile("'a' = 'b'", &TranslateOptions::improved()).unwrap(),
            CompiledQuery::Scalar(_)
        ));
        assert!(matches!(
            compile("string-length(/a)", &TranslateOptions::improved()).unwrap(),
            CompiledQuery::Scalar(_)
        ));
    }

    #[test]
    fn traced_compile_matches_untraced_and_times_phases() {
        for opts in [
            TranslateOptions::canonical(),
            TranslateOptions::improved(),
            TranslateOptions::extended(),
        ] {
            for q in ["/a/descendant::b[count(c) = 2]/d", "count(/a/b)", "1 + 2"] {
                let plain = compile(q, &opts).unwrap();
                let (traced, trace) = compile_traced(q, &opts).unwrap();
                // Tracing must not change the produced query.
                let render = |c: &CompiledQuery| match c {
                    CompiledQuery::Sequence(p) => explain(p),
                    CompiledQuery::Scalar(s) => s.to_string(),
                };
                assert_eq!(render(&plain), render(&traced), "{q}");
                let names: Vec<&str> = trace.phases.iter().map(|p| p.name.as_str()).collect();
                assert!(
                    names.starts_with(&["parse", "semantic", "fold", "translate"]),
                    "{names:?}"
                );
                assert_eq!(names.contains(&"prune"), opts.prune_properties, "{names:?}");
                assert!(trace.plan_ops > 0 || q == "1 + 2", "{q}: {}", trace.plan_ops);
                assert_eq!(trace.query, q);
            }
        }
    }

    #[test]
    fn traced_rewrites_fire() {
        // 1+1 folds to a position() = 2 rewrite in the predicate.
        let (_, trace) = compile_traced("/a/b[1 + 1]", &TranslateOptions::improved()).unwrap();
        assert!(trace.rewrites.iter().any(|r| r == "constant-fold"), "{:?}", trace.rewrites);
        // An inner relative path gets memoized under the improved options…
        let (_, trace) = compile_traced(
            "/a/descendant::b[count(descendant::c/following::*) = 1000]",
            &TranslateOptions::improved(),
        )
        .unwrap();
        assert!(
            trace.rewrites.iter().any(|r| r.starts_with("memoize-inner")),
            "{:?}",
            trace.rewrites
        );
        assert!(
            trace.rewrites.iter().any(|r| r.starts_with("split-expensive")),
            "{:?}",
            trace.rewrites
        );
        // …but not under the canonical ones.
        let (_, trace) = compile_traced(
            "/a/descendant::b[count(descendant::c/following::*) = 1000]",
            &TranslateOptions::canonical(),
        )
        .unwrap();
        assert!(
            !trace.rewrites.iter().any(|r| r.starts_with("memoize-inner")),
            "{:?}",
            trace.rewrites
        );
    }

    #[test]
    fn threads_one_takes_exact_serial_path() {
        // Satellite of DESIGN.md §14: --threads 1 must compile the
        // byte-identical serial plan — no Exchange anywhere, structural
        // plan equality with the default options.
        for q in [
            "//a//b",
            "/a/b[c]",
            "count(//a[b])",
            "/dblp/article[year='1991']/@key",
        ] {
            let serial = compile(q, &TranslateOptions::improved()).unwrap();
            let one = compile(q, &TranslateOptions::improved().with_threads(1)).unwrap();
            assert_eq!(serial, one, "{q}");
            let zero = compile(q, &TranslateOptions::improved().with_threads(0)).unwrap();
            assert_eq!(serial, zero, "{q}");
        }
    }

    #[test]
    fn threads_many_inserts_exchange_and_traces_phase() {
        let opts = TranslateOptions::improved().with_threads(4);
        let (compiled, trace) = compile_traced("//a//b", &opts).unwrap();
        let text = match &compiled {
            CompiledQuery::Sequence(p) => explain(p),
            CompiledQuery::Scalar(s) => s.to_string(),
        };
        assert!(text.contains("⇶[4]"), "{text}");
        assert!(trace.phases.iter().any(|p| p.name == "parallelize"), "{:?}", trace.phases);
        assert!(
            trace.rewrites.iter().any(|r| r.starts_with("parallelize ×")),
            "{:?}",
            trace.rewrites
        );
        // Tracing must not change the produced query.
        let plain = compile("//a//b", &opts).unwrap();
        assert_eq!(plain, compiled);
    }

    #[test]
    fn cost_off_or_statless_is_byte_identical_to_plain_compile() {
        use xmlstore::gen::{generate_dblp, DblpParams};
        use xmlstore::XmlStore;
        let store = generate_dblp(DblpParams { records: 20, seed: 3 });
        let stats = store.structural_index().unwrap().stats().clone();
        for q in [
            "/dblp/article/title",
            "//article[author]",
            "count(/dblp/article)",
        ] {
            // Off mode ignores stats entirely.
            let (with, trace) =
                compile_with_stats(q, &TranslateOptions::improved(), Some(&stats)).unwrap();
            assert!(trace.is_none(), "{q}");
            assert_eq!(with, compile(q, &TranslateOptions::improved()).unwrap(), "{q}");
            // CostBased without stats degrades to Off.
            let (no_stats, trace) =
                compile_with_stats(q, &TranslateOptions::cost_based(), None).unwrap();
            assert!(trace.is_none(), "{q}");
            assert_eq!(no_stats, compile(q, &TranslateOptions::cost_based()).unwrap(), "{q}");
        }
    }

    #[test]
    fn cost_based_traced_matches_untraced_and_records_decisions() {
        use xmlstore::gen::{generate_dblp, DblpParams};
        use xmlstore::XmlStore;
        let store = generate_dblp(DblpParams { records: 20, seed: 3 });
        let stats = store.structural_index().unwrap().stats().clone();
        let opts = TranslateOptions::cost_based();
        for q in [
            "/dblp/article/title",
            "//article[author/text()]",
            "/dblp/article[count(author)=4]/@key",
            "count(/dblp/article)",
        ] {
            let (plain, opt_trace) = compile_with_stats(q, &opts, Some(&stats)).unwrap();
            let (traced, trace) = compile_traced_with_stats(q, &opts, Some(&stats)).unwrap();
            assert_eq!(plain, traced, "{q}");
            let ot = opt_trace.expect("optimizer ran");
            let tt = trace.optimizer.expect("traced optimizer ran");
            assert_eq!(ot, tt, "{q}");
            assert_eq!(ot.stats_fingerprint, stats.fingerprint);
            assert!(trace.phases.iter().any(|p| p.name == "optimize"), "{:?}", trace.phases);
            // Every path query makes at least a scan-kernel or outer-shape
            // decision.
            assert!(!ot.decisions.is_empty(), "{q}");
        }
    }

    #[test]
    fn traced_prune_names_elided_operators() {
        let (_, trace) = compile_traced("/a/b/c", &TranslateOptions::extended()).unwrap();
        assert!(trace.pruned_ops > 0);
        assert_eq!(trace.pruned_labels.len(), trace.pruned_ops, "{:?}", trace.pruned_labels);
        assert!(
            trace
                .pruned_labels
                .iter()
                .all(|l| l.starts_with("Π^D") || l.starts_with("Sort")),
            "{:?}",
            trace.pruned_labels
        );
        let report = trace.report();
        assert!(report.contains("pruned: "), "{report}");
    }

    #[test]
    fn variables_as_nodesets_rejected() {
        assert!(compile("$v/a", &TranslateOptions::improved()).is_err());
        // Atomic variable uses are fine.
        assert!(compile("/a[@x = $v]", &TranslateOptions::improved()).is_ok());
    }

    #[test]
    fn fig5_and_fig10_queries_compile() {
        let opts = TranslateOptions::improved();
        for q in [
            "/child::xdoc/descendant::*/ancestor::*/descendant::*/attribute::id",
            "/child::xdoc/descendant::*/preceding-sibling::*/following::*/attribute::id",
            "/child::xdoc/descendant::*/ancestor::*/ancestor::*/attribute::id",
            "/child::xdoc/child::*/parent::*/descendant::*/attribute::id",
            "/dblp/article/title",
            "/dblp/*/title",
            "/dblp/article[position() = 3]/title",
            "/dblp/article[position() < 100]/title",
            "/dblp/article[position() = last()]/title",
            "/dblp/article[position()=last()-10]/title",
            "/dblp/article/title | /dblp/inproceedings/title",
            "/dblp/article[count(author)=4]/@key",
            "/dblp/article[year='1991']/@key",
            "/dblp/*[author='Guido Moerkotte']/@key",
            "/dblp/inproceedings[@key='conf/er/LockemannM91']/title",
            "/dblp/inproceedings[author='Guido Moerkotte'][position()=last()]/title",
        ] {
            compile(q, &opts).unwrap_or_else(|e| panic!("{q}: {e}"));
            compile(q, &TranslateOptions::canonical()).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }
}
