//! Order/duplicate property inference over logical plans, in the spirit
//! of Hidders & Michiels ("Avoiding unnecessary ordering operations in
//! XPath", paper ref. [13]) — the refinement the paper mentions in §4.1
//! but skips. A conservative three-flag lattice is inferred per result
//! attribute and used to prune provably redundant Π^D and Sort operators.
//!
//! The flags describe the stream of values of one node attribute:
//! * `distinct` — no node occurs twice,
//! * `ordered`  — non-decreasing document order,
//! * `disjoint` — no node is an ancestor of another.
//!
//! Key transitions (all proofs rely on the preorder property: if
//! `p1 < p2` and `p2 ∉ subtree(p1)`, the whole subtree of `p1` precedes
//! `p2`):
//! * `child`      (d, o, j) → (d, o∧j, j)
//! * `attribute`  (d, o, j) → (d, o, ⊤)
//! * `self`       (d, o, j) → (d, o, j)
//! * `descendant[-or-self]` (d, o, j) → (d∧j, o∧j, ⊥)
//! * every other axis → ⊥ (conservative)

use xmlstore::Axis;

use algebra::scalar::ScalarExpr;
use algebra::LogicalOp;

/// Stream properties of one node attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Props {
    /// Duplicate-free.
    pub distinct: bool,
    /// Non-decreasing document order.
    pub ordered: bool,
    /// No ancestor/descendant pairs.
    pub disjoint: bool,
}

impl Props {
    /// All guarantees (single-tuple streams).
    pub fn single() -> Props {
        Props { distinct: true, ordered: true, disjoint: true }
    }

    /// No guarantees.
    pub fn none() -> Props {
        Props { distinct: false, ordered: false, disjoint: false }
    }
}

fn axis_transition(axis: Axis, p: Props) -> Props {
    match axis {
        Axis::Child => Props {
            distinct: p.distinct,
            // Duplicate parents interleave their (repeated) child runs,
            // so order needs distinctness as well as disjointness.
            ordered: p.ordered && p.disjoint && p.distinct,
            disjoint: p.disjoint,
        },
        Axis::Attribute => Props { distinct: p.distinct, ordered: p.ordered, disjoint: true },
        Axis::SelfAxis => p,
        Axis::Descendant | Axis::DescendantOrSelf => Props {
            distinct: p.distinct && p.disjoint,
            ordered: p.ordered && p.disjoint && p.distinct,
            disjoint: false,
        },
        _ => Props::none(),
    }
}

/// Infer the properties of `attr`'s value stream at the output of `plan`.
pub fn props_of(plan: &LogicalOp, attr: &str) -> Props {
    match plan {
        // A singleton stream trivially satisfies everything.
        LogicalOp::Singleton => Props::single(),
        LogicalOp::Select { input, .. }
        | LogicalOp::CounterMap { input, .. }
        | LogicalOp::MemoMap { input, .. }
        | LogicalOp::TmpCs { input, .. }
        | LogicalOp::MemoX { input, .. } => {
            // Filters keep subsequences; tuple-extending maps keep the
            // stream; both preserve all three properties.
            props_of(input, attr)
        }
        LogicalOp::DedupBy { input, attr: a, .. } => {
            let mut p = props_of(input, attr);
            if a == attr {
                p.distinct = true;
            }
            p
        }
        LogicalOp::SortBy { input, attr: a, .. } => {
            let mut p = props_of(input, attr);
            if a == attr {
                p.ordered = true;
            }
            p
        }
        LogicalOp::Rename { input, from, to } => {
            if to == attr {
                props_of(input, from)
            } else {
                props_of(input, attr)
            }
        }
        LogicalOp::MapExpr { input, attr: a, expr } => {
            if a == attr {
                match expr {
                    // Alias of another attribute.
                    ScalarExpr::Attr(b) => props_of(input, b),
                    // root(cn) maps every tuple to the same node:
                    // guarantees hold only for single-tuple inputs.
                    ScalarExpr::RootOf(_) => {
                        if matches!(**input, LogicalOp::Singleton) {
                            Props::single()
                        } else {
                            Props::none()
                        }
                    }
                    _ => Props::none(),
                }
            } else {
                props_of(input, attr)
            }
        }
        LogicalOp::UnnestMap { input, context, attr: a, axis, .. } => {
            if a == attr {
                axis_transition(*axis, props_of(input, context))
            } else {
                // The stream is expanded: other attributes repeat.
                Props::none()
            }
        }
        // Joins, unions and tokenisation give no guarantees.
        LogicalOp::DJoin { .. }
        | LogicalOp::Cross { .. }
        | LogicalOp::SemiJoin { .. }
        | LogicalOp::AntiJoin { .. }
        | LogicalOp::Concat { .. }
        | LogicalOp::TokenizeMap { .. } => Props::none(),
    }
}

/// Remove Π^D and Sort operators whose guarantees the input already
/// provides. Recurses into nested plans of scalar subscripts.
pub fn prune(plan: LogicalOp) -> LogicalOp {
    let plan = map_children(plan, prune);
    match plan {
        LogicalOp::DedupBy { input, attr } => {
            if props_of(&input, &attr).distinct {
                *input
            } else {
                LogicalOp::DedupBy { input, attr }
            }
        }
        LogicalOp::SortBy { input, attr } => {
            if props_of(&input, &attr).ordered {
                *input
            } else {
                LogicalOp::SortBy { input, attr }
            }
        }
        other => other,
    }
}

fn map_children(plan: LogicalOp, f: fn(LogicalOp) -> LogicalOp) -> LogicalOp {
    use LogicalOp as L;
    match plan {
        L::Singleton => L::Singleton,
        L::Select { input, pred } => {
            L::Select { input: Box::new(f(*input)), pred: prune_scalar(pred) }
        }
        L::DedupBy { input, attr } => L::DedupBy { input: Box::new(f(*input)), attr },
        L::Rename { input, from, to } => L::Rename { input: Box::new(f(*input)), from, to },
        L::MapExpr { input, attr, expr } => {
            L::MapExpr { input: Box::new(f(*input)), attr, expr: prune_scalar(expr) }
        }
        L::CounterMap { input, attr, reset_on } => {
            L::CounterMap { input: Box::new(f(*input)), attr, reset_on }
        }
        L::MemoMap { input, attr, expr, key } => L::MemoMap {
            input: Box::new(f(*input)),
            attr,
            expr: prune_scalar(expr),
            key,
        },
        L::DJoin { left, right } => {
            L::DJoin { left: Box::new(f(*left)), right: Box::new(f(*right)) }
        }
        L::Cross { left, right } => {
            L::Cross { left: Box::new(f(*left)), right: Box::new(f(*right)) }
        }
        L::SemiJoin { left, right, pred } => L::SemiJoin {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            pred: prune_scalar(pred),
        },
        L::AntiJoin { left, right, pred } => L::AntiJoin {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            pred: prune_scalar(pred),
        },
        L::UnnestMap { input, context, attr, axis, test } => {
            L::UnnestMap { input: Box::new(f(*input)), context, attr, axis, test }
        }
        L::TokenizeMap { input, attr, expr } => {
            L::TokenizeMap { input: Box::new(f(*input)), attr, expr: prune_scalar(expr) }
        }
        L::Concat { parts } => L::Concat { parts: parts.into_iter().map(f).collect() },
        L::SortBy { input, attr } => L::SortBy { input: Box::new(f(*input)), attr },
        L::TmpCs { input, cs, group } => L::TmpCs { input: Box::new(f(*input)), cs, group },
        L::MemoX { input, key } => L::MemoX { input: Box::new(f(*input)), key },
    }
}

/// Prune nested plans inside a scalar expression (top-level scalar
/// queries).
pub fn prune_scalar_expr(e: ScalarExpr) -> ScalarExpr {
    prune_scalar(e)
}

fn prune_scalar(e: ScalarExpr) -> ScalarExpr {
    use ScalarExpr as S;
    match e {
        S::Agg(mut agg) => {
            agg.plan = Box::new(prune(*agg.plan));
            S::Agg(agg)
        }
        S::And(a, b) => S::And(Box::new(prune_scalar(*a)), Box::new(prune_scalar(*b))),
        S::Or(a, b) => S::Or(Box::new(prune_scalar(*a)), Box::new(prune_scalar(*b))),
        S::Not(a) => S::Not(Box::new(prune_scalar(*a))),
        S::Neg(a) => S::Neg(Box::new(prune_scalar(*a))),
        S::Compare { op, mode, lhs, rhs } => S::Compare {
            op,
            mode,
            lhs: Box::new(prune_scalar(*lhs)),
            rhs: Box::new(prune_scalar(*rhs)),
        },
        S::Arith(op, a, b) => S::Arith(op, Box::new(prune_scalar(*a)), Box::new(prune_scalar(*b))),
        S::Convert(k, a) => S::Convert(k, Box::new(prune_scalar(*a))),
        S::StrFn(f, args) => S::StrFn(f, args.into_iter().map(prune_scalar).collect()),
        S::NumFn(f, a) => S::NumFn(f, Box::new(prune_scalar(*a))),
        S::NodeFn(f, a) => S::NodeFn(f, Box::new(prune_scalar(*a))),
        S::Lang(a, ctx) => S::Lang(Box::new(prune_scalar(*a)), ctx),
        S::Deref(a) => S::Deref(Box::new(prune_scalar(*a))),
        S::RootOf(a) => S::RootOf(Box::new(prune_scalar(*a))),
        leaf @ (S::Const(_) | S::Attr(_) | S::Var(_)) => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::TranslateOptions;
    use crate::translate::{translate, CompiledQuery};
    use algebra::explain::explain;
    use xpath_syntax::frontend;

    fn plan(q: &str) -> LogicalOp {
        let opts = TranslateOptions::improved();
        match translate(&frontend(q).unwrap(), &opts).unwrap() {
            CompiledQuery::Sequence(p) => p,
            CompiledQuery::Scalar(s) => panic!("scalar {s}"),
        }
    }

    #[test]
    fn child_chain_is_distinct_and_ordered() {
        let p = plan("/a/b/c");
        // The final dedup is prunable.
        let pruned = prune(p);
        let text = explain(&pruned);
        assert!(!text.contains("Π^D"), "{text}");
    }

    #[test]
    fn attribute_step_preserves_order() {
        let pruned = prune(plan("/a/b/@id"));
        let text = explain(&pruned);
        assert!(!text.contains("Π^D"), "{text}");
    }

    #[test]
    fn descendant_from_root_is_distinct() {
        // A single descendant step from the (singleton) root: distinct,
        // so both the pushed and the final dedups go away.
        let pruned = prune(plan("/descendant::a"));
        let text = explain(&pruned);
        assert!(!text.contains("Π^D"), "{text}");
    }

    #[test]
    fn double_slash_keeps_child_distinct_but_not_parent_paths() {
        // //a = descendant-or-self::node()/child::a: child of nested
        // contexts stays distinct (single parent per node).
        let pruned = prune(plan("//a"));
        let text = explain(&pruned);
        assert!(!text.contains("Π^D"), "{text}");
        // parent::* genuinely produces duplicates: dedup must survive.
        let pruned = prune(plan("/a/b/parent::*"));
        let text = explain(&pruned);
        assert!(text.contains("Π^D"), "{text}");
    }

    #[test]
    fn descendant_of_nested_contexts_keeps_dedup() {
        // //a//b: the second descendant step starts from possibly nested
        // a's — duplicates are possible, dedup must stay.
        let pruned = prune(plan("//a//b"));
        let text = explain(&pruned);
        assert!(text.contains("Π^D"), "{text}");
    }

    #[test]
    fn filter_sort_pruned_on_ordered_input() {
        // (/a/b)[2] sorts before the positional predicate; a child chain
        // is already ordered.
        let pruned = prune(plan("(/a/b)[2]"));
        let text = explain(&pruned);
        assert!(!text.contains("Sort["), "{text}");
        // A union is not provably ordered: Sort must stay.
        let pruned = prune(plan("(/a/b | /a/c)[2]"));
        let text = explain(&pruned);
        assert!(text.contains("Sort["), "{text}");
    }

    #[test]
    fn transition_table() {
        let all = Props::single();
        let child = axis_transition(Axis::Child, all);
        assert!(child.distinct && child.ordered && child.disjoint);
        let desc = axis_transition(Axis::Descendant, all);
        assert!(desc.distinct && desc.ordered && !desc.disjoint);
        let child_of_desc = axis_transition(Axis::Child, desc);
        assert!(child_of_desc.distinct && !child_of_desc.ordered);
        let attr = axis_transition(Axis::Attribute, desc);
        assert!(attr.distinct && attr.ordered && attr.disjoint);
        let anc = axis_transition(Axis::Ancestor, all);
        assert_eq!(anc, Props::none());
    }
}
