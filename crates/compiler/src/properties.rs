//! Order/duplicate property inference over logical plans, in the spirit
//! of Hidders & Michiels ("Avoiding unnecessary ordering operations in
//! XPath", paper ref. [13]) — the refinement the paper mentions in §4.1
//! but skips. A conservative three-flag lattice is inferred per result
//! attribute and used to prune provably redundant Π^D and Sort operators.
//!
//! The flags describe the stream of values of one node attribute:
//! * `distinct` — no node occurs twice,
//! * `ordered`  — non-decreasing document order,
//! * `disjoint` — no node is an ancestor of another.
//!
//! Key transitions (all proofs rely on the preorder property: if
//! `p1 < p2` and `p2 ∉ subtree(p1)`, the whole subtree of `p1` precedes
//! `p2`):
//! * `child`      (d, o, j) → (d, o∧j∧d, j)
//! * `attribute`  (d, o, j) → (d, o, ⊤)
//! * `self`       (d, o, j) → (d, o, j)
//! * `descendant[-or-self]` (d, o, j) → (d∧j, o∧j∧d, ⊥)
//! * from a statically-singleton input stream (at most one context
//!   tuple): `following-sibling` → (⊤, ⊤, ⊤), `preceding-sibling` →
//!   (⊤, ⊥, ⊤) (reverse document order), `parent` → (⊤, ⊤, ⊤).
//!   These do NOT generalise to multi-context streams — siblings of two
//!   distinct disjoint contexts can interleave and repeat, and parents
//!   of disjoint siblings coincide (see the counterexample tests).
//! * every other axis → ⊥ (conservative)

use xmlstore::Axis;

use algebra::scalar::ScalarExpr;
use algebra::LogicalOp;

/// Stream properties of one node attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Props {
    /// Duplicate-free.
    pub distinct: bool,
    /// Non-decreasing document order.
    pub ordered: bool,
    /// No ancestor/descendant pairs.
    pub disjoint: bool,
}

impl Props {
    /// All guarantees (single-tuple streams).
    pub fn single() -> Props {
        Props { distinct: true, ordered: true, disjoint: true }
    }

    /// No guarantees.
    pub fn none() -> Props {
        Props { distinct: false, ordered: false, disjoint: false }
    }
}

fn axis_transition(axis: Axis, p: Props, single: bool) -> Props {
    match axis {
        // Sibling and parent steps from a *statically singleton* input
        // (at most one context tuple): the siblings of one node are
        // pairwise disjoint and duplicate-free; following-sibling emits
        // them in document order, preceding-sibling in reverse; the
        // parent of one node is at most one node. None of this holds
        // for multi-context streams, however distinct/disjoint — two
        // disjoint siblings' following-siblings overlap and restart,
        // and disjoint siblings share a parent (counterexample tests
        // below).
        Axis::FollowingSibling if single => Props::single(),
        Axis::PrecedingSibling if single => {
            Props { distinct: true, ordered: false, disjoint: true }
        }
        Axis::Parent if single => Props::single(),
        Axis::Child => Props {
            distinct: p.distinct,
            // Duplicate parents interleave their (repeated) child runs,
            // so order needs distinctness as well as disjointness.
            ordered: p.ordered && p.disjoint && p.distinct,
            disjoint: p.disjoint,
        },
        Axis::Attribute => Props { distinct: p.distinct, ordered: p.ordered, disjoint: true },
        Axis::SelfAxis => p,
        Axis::Descendant | Axis::DescendantOrSelf => Props {
            distinct: p.distinct && p.disjoint,
            ordered: p.ordered && p.disjoint && p.distinct,
            disjoint: false,
        },
        _ => Props::none(),
    }
}

/// Infer the properties of `attr`'s value stream at the output of `plan`.
pub fn props_of(plan: &LogicalOp, attr: &str) -> Props {
    match plan {
        // A singleton stream trivially satisfies everything.
        LogicalOp::Singleton => Props::single(),
        LogicalOp::Select { input, .. }
        | LogicalOp::CounterMap { input, .. }
        | LogicalOp::MemoMap { input, .. }
        | LogicalOp::TmpCs { input, .. }
        | LogicalOp::MemoX { input, .. } => {
            // Filters keep subsequences; tuple-extending maps keep the
            // stream; both preserve all three properties.
            props_of(input, attr)
        }
        LogicalOp::DedupBy { input, attr: a, .. } => {
            let mut p = props_of(input, attr);
            if a == attr {
                p.distinct = true;
            }
            p
        }
        LogicalOp::SortBy { input, attr: a, .. } => {
            let mut p = props_of(input, attr);
            if a == attr {
                p.ordered = true;
            }
            p
        }
        LogicalOp::Rename { input, from, to } => {
            if to == attr {
                props_of(input, from)
            } else {
                props_of(input, attr)
            }
        }
        LogicalOp::MapExpr { input, attr: a, expr } => {
            if a == attr {
                match expr {
                    // Alias of another attribute.
                    ScalarExpr::Attr(b) => props_of(input, b),
                    // root(cn) maps every tuple to the same node:
                    // guarantees hold only for single-tuple inputs.
                    ScalarExpr::RootOf(_) => {
                        if matches!(**input, LogicalOp::Singleton) {
                            Props::single()
                        } else {
                            Props::none()
                        }
                    }
                    _ => Props::none(),
                }
            } else {
                props_of(input, attr)
            }
        }
        LogicalOp::UnnestMap { input, context, attr: a, axis, .. } => {
            if a == attr {
                axis_transition(*axis, props_of(input, context), trivially_singleton(input))
            } else {
                // The stream is expanded: other attributes repeat.
                Props::none()
            }
        }
        // Joins, unions and tokenisation give no guarantees.
        LogicalOp::DJoin { .. }
        | LogicalOp::Cross { .. }
        | LogicalOp::SemiJoin { .. }
        | LogicalOp::AntiJoin { .. }
        | LogicalOp::Concat { .. }
        | LogicalOp::TokenizeMap { .. } => Props::none(),
        // The parallelize pass runs after pruning, so Exchange never
        // feeds another property decision; stay conservative.
        LogicalOp::Exchange { .. } | LogicalOp::PartitionSource => Props::none(),
    }
}

/// Remove Π^D and Sort operators whose guarantees the input already
/// provides. Recurses into nested plans of scalar subscripts.
pub fn prune(plan: LogicalOp) -> LogicalOp {
    prune_with_report(plan, &mut Vec::new())
}

/// Like [`prune`], recording the label of every elided operator (in
/// bottom-up elision order) so EXPLAIN can name each pruned site.
pub fn prune_with_report(plan: LogicalOp, report: &mut Vec<String>) -> LogicalOp {
    let plan =
        map_children(plan, report, |r, c| prune_with_report(c, r), |r, e| prune_scalar(e, r));
    match plan {
        LogicalOp::DedupBy { input, attr } => {
            if props_of(&input, &attr).distinct {
                report.push(format!("Π^D[{attr}]"));
                *input
            } else {
                LogicalOp::DedupBy { input, attr }
            }
        }
        LogicalOp::SortBy { input, attr } => {
            if props_of(&input, &attr).ordered {
                report.push(format!("Sort[{attr}]"));
                *input
            } else {
                LogicalOp::SortBy { input, attr }
            }
        }
        other => other,
    }
}

fn map_children<R>(
    plan: LogicalOp,
    r: &mut R,
    f: fn(&mut R, LogicalOp) -> LogicalOp,
    g: fn(&mut R, ScalarExpr) -> ScalarExpr,
) -> LogicalOp {
    use LogicalOp as L;
    match plan {
        L::Singleton => L::Singleton,
        L::Select { input, pred } => L::Select { input: Box::new(f(r, *input)), pred: g(r, pred) },
        L::DedupBy { input, attr } => L::DedupBy { input: Box::new(f(r, *input)), attr },
        L::Rename { input, from, to } => L::Rename { input: Box::new(f(r, *input)), from, to },
        L::MapExpr { input, attr, expr } => {
            L::MapExpr { input: Box::new(f(r, *input)), attr, expr: g(r, expr) }
        }
        L::CounterMap { input, attr, reset_on } => {
            L::CounterMap { input: Box::new(f(r, *input)), attr, reset_on }
        }
        L::MemoMap { input, attr, expr, key } => {
            L::MemoMap { input: Box::new(f(r, *input)), attr, expr: g(r, expr), key }
        }
        L::DJoin { left, right } => {
            L::DJoin { left: Box::new(f(r, *left)), right: Box::new(f(r, *right)) }
        }
        L::Cross { left, right } => {
            L::Cross { left: Box::new(f(r, *left)), right: Box::new(f(r, *right)) }
        }
        L::SemiJoin { left, right, pred } => L::SemiJoin {
            left: Box::new(f(r, *left)),
            right: Box::new(f(r, *right)),
            pred: g(r, pred),
        },
        L::AntiJoin { left, right, pred } => L::AntiJoin {
            left: Box::new(f(r, *left)),
            right: Box::new(f(r, *right)),
            pred: g(r, pred),
        },
        L::UnnestMap { input, context, attr, axis, test, hint, probe } => L::UnnestMap {
            input: Box::new(f(r, *input)),
            context,
            attr,
            axis,
            test,
            hint,
            probe,
        },
        L::TokenizeMap { input, attr, expr } => {
            L::TokenizeMap { input: Box::new(f(r, *input)), attr, expr: g(r, expr) }
        }
        L::Concat { parts } => L::Concat { parts: parts.into_iter().map(|p| f(r, p)).collect() },
        L::SortBy { input, attr } => L::SortBy { input: Box::new(f(r, *input)), attr },
        L::TmpCs { input, cs, group } => L::TmpCs { input: Box::new(f(r, *input)), cs, group },
        L::MemoX { input, key } => L::MemoX { input: Box::new(f(r, *input)), key },
        L::Exchange { source, body, partitions } => L::Exchange {
            source: Box::new(f(r, *source)),
            body: Box::new(f(r, *body)),
            partitions,
        },
        L::PartitionSource => L::PartitionSource,
    }
}

/// Prune nested plans inside a scalar expression (top-level scalar
/// queries).
pub fn prune_scalar_expr(e: ScalarExpr) -> ScalarExpr {
    prune_scalar(e, &mut Vec::new())
}

/// Like [`prune_scalar_expr`], recording elided-operator labels.
pub fn prune_scalar_expr_with_report(e: ScalarExpr, report: &mut Vec<String>) -> ScalarExpr {
    prune_scalar(e, report)
}

fn prune_scalar(e: ScalarExpr, rep: &mut Vec<String>) -> ScalarExpr {
    use ScalarExpr as S;
    match e {
        S::Agg(mut agg) => {
            agg.plan = Box::new(prune_with_report(*agg.plan, rep));
            S::Agg(agg)
        }
        S::And(a, b) => S::And(Box::new(prune_scalar(*a, rep)), Box::new(prune_scalar(*b, rep))),
        S::Or(a, b) => S::Or(Box::new(prune_scalar(*a, rep)), Box::new(prune_scalar(*b, rep))),
        S::Not(a) => S::Not(Box::new(prune_scalar(*a, rep))),
        S::Neg(a) => S::Neg(Box::new(prune_scalar(*a, rep))),
        S::Compare { op, mode, lhs, rhs } => S::Compare {
            op,
            mode,
            lhs: Box::new(prune_scalar(*lhs, rep)),
            rhs: Box::new(prune_scalar(*rhs, rep)),
        },
        S::Arith(op, a, b) => {
            S::Arith(op, Box::new(prune_scalar(*a, rep)), Box::new(prune_scalar(*b, rep)))
        }
        S::Convert(k, a) => S::Convert(k, Box::new(prune_scalar(*a, rep))),
        S::StrFn(f, args) => S::StrFn(f, args.into_iter().map(|a| prune_scalar(a, rep)).collect()),
        S::NumFn(f, a) => S::NumFn(f, Box::new(prune_scalar(*a, rep))),
        S::NodeFn(f, a) => S::NodeFn(f, Box::new(prune_scalar(*a, rep))),
        S::Lang(a, ctx) => S::Lang(Box::new(prune_scalar(*a, rep)), ctx),
        S::Deref(a) => S::Deref(Box::new(prune_scalar(*a, rep))),
        S::RootOf(a) => S::RootOf(Box::new(prune_scalar(*a, rep))),
        leaf @ (S::Const(_) | S::Attr(_) | S::Var(_)) => leaf,
    }
}

// ===================== Intra-query parallelism =====================
//
// The parallelize pass (DESIGN.md §14) inserts Volcano-style Exchange
// operators above parallel-safe spine segments. An `Exchange{source,
// body, partitions}` drains `source` serially, splits its tuples into
// contiguous chunks, runs a replica of `body` (whose single
// PartitionSource leaf yields one chunk) per worker thread, and merges
// the chunk results back in source order — byte-identical to the serial
// plan because every operator admitted to a body is *partition
// transparent*: its output for a contiguous run of input tuples depends
// only on that run, so concatenating per-chunk outputs in chunk order
// reproduces the serial output.

/// Is `op` safe on the partitioned spine of an Exchange body?
///
/// The disqualified spine operators all carry state across the tuples
/// of one `open()`: counters (χ counter++), context-size buffers
/// (Tmp^cs), dedup/sort/memo tables and union position. d-join and
/// semi-/anti-join qualify because their right sides are re-opened per
/// left tuple and reset all per-evaluation state on `open` — each
/// worker replica owns a private right side.
fn partition_transparent(op: &LogicalOp) -> bool {
    matches!(
        op,
        LogicalOp::Select { .. }
            | LogicalOp::MapExpr { .. }
            | LogicalOp::MemoMap { .. }
            | LogicalOp::Rename { .. }
            | LogicalOp::UnnestMap { .. }
            | LogicalOp::TokenizeMap { .. }
            | LogicalOp::DJoin { .. }
            | LogicalOp::SemiJoin { .. }
            | LogicalOp::AntiJoin { .. }
    )
}

/// Does running `op` per input tuple cost enough to amortise the
/// thread fan-out?
fn spine_expensive(op: &LogicalOp) -> bool {
    match op {
        LogicalOp::UnnestMap { axis, .. } => recursive_axis(*axis),
        // Dependent joins re-evaluate their right side per left tuple;
        // worth fanning out whenever the right side does real work.
        LogicalOp::DJoin { right, .. } => has_real_work(right),
        LogicalOp::SemiJoin { .. } | LogicalOp::AntiJoin { .. } => true,
        // Maps and filters are cheap unless they evaluate a nested
        // aggregate plan per tuple.
        LogicalOp::Select { pred, .. } => scalar_has_plan(pred),
        LogicalOp::MapExpr { expr, .. }
        | LogicalOp::MemoMap { expr, .. }
        | LogicalOp::TokenizeMap { expr, .. } => scalar_has_plan(expr),
        _ => false,
    }
}

/// Axes whose evaluation walks an unbounded region of the document.
fn recursive_axis(axis: Axis) -> bool {
    matches!(
        axis,
        Axis::Descendant
            | Axis::DescendantOrSelf
            | Axis::Ancestor
            | Axis::AncestorOrSelf
            | Axis::Following
            | Axis::Preceding
            | Axis::FollowingSibling
            | Axis::PrecedingSibling
    )
}

fn scalar_has_plan(e: &ScalarExpr) -> bool {
    !algebra::explain::scalar_plans(e).is_empty()
}

/// Any operator in `plan` (predicates included) that navigates the
/// document or evaluates nested plans.
fn has_real_work(plan: &LogicalOp) -> bool {
    match plan {
        LogicalOp::UnnestMap { .. }
        | LogicalOp::TokenizeMap { .. }
        | LogicalOp::DJoin { .. }
        | LogicalOp::Cross { .. }
        | LogicalOp::SemiJoin { .. }
        | LogicalOp::AntiJoin { .. } => true,
        LogicalOp::Select { input, pred } => scalar_has_plan(pred) || has_real_work(input),
        LogicalOp::MapExpr { input, expr, .. } | LogicalOp::MemoMap { input, expr, .. } => {
            scalar_has_plan(expr) || has_real_work(input)
        }
        other => other.children().into_iter().any(has_real_work),
    }
}

/// Statically at most one tuple: partitioning such a stream cannot
/// produce parallelism, so it is never worth an Exchange.
fn trivially_singleton(plan: &LogicalOp) -> bool {
    match plan {
        LogicalOp::Singleton => true,
        LogicalOp::Select { input, .. }
        | LogicalOp::MapExpr { input, .. }
        | LogicalOp::MemoMap { input, .. }
        | LogicalOp::Rename { input, .. }
        | LogicalOp::CounterMap { input, .. }
        | LogicalOp::DedupBy { input, .. }
        | LogicalOp::SortBy { input, .. }
        | LogicalOp::TmpCs { input, .. }
        | LogicalOp::MemoX { input, .. } => trivially_singleton(input),
        LogicalOp::SemiJoin { left, .. } | LogicalOp::AntiJoin { left, .. } => {
            trivially_singleton(left)
        }
        _ => false,
    }
}

/// Spine operators that never grow their input stream (so a singleton
/// below them stays a singleton).
fn preserves_cardinality(op: &LogicalOp) -> bool {
    matches!(
        op,
        LogicalOp::Select { .. }
            | LogicalOp::MapExpr { .. }
            | LogicalOp::MemoMap { .. }
            | LogicalOp::Rename { .. }
            | LogicalOp::SemiJoin { .. }
            | LogicalOp::AntiJoin { .. }
    )
}

/// Detach the spine input of a transparent operator, leaving a
/// PartitionSource placeholder in its place.
fn take_spine_input(op: &mut LogicalOp) -> LogicalOp {
    use LogicalOp as L;
    let slot = match op {
        L::Select { input, .. }
        | L::MapExpr { input, .. }
        | L::MemoMap { input, .. }
        | L::Rename { input, .. }
        | L::UnnestMap { input, .. }
        | L::TokenizeMap { input, .. } => input,
        L::DJoin { left, .. } | L::SemiJoin { left, .. } | L::AntiJoin { left, .. } => left,
        _ => unreachable!("take_spine_input on a non-transparent operator"),
    };
    *std::mem::replace(slot, Box::new(L::PartitionSource))
}

fn set_spine_input(op: &mut LogicalOp, child: LogicalOp) {
    use LogicalOp as L;
    let slot = match op {
        L::Select { input, .. }
        | L::MapExpr { input, .. }
        | L::MemoMap { input, .. }
        | L::Rename { input, .. }
        | L::UnnestMap { input, .. }
        | L::TokenizeMap { input, .. } => input,
        L::DJoin { left, .. } | L::SemiJoin { left, .. } | L::AntiJoin { left, .. } => left,
        _ => unreachable!("set_spine_input on a non-transparent operator"),
    };
    **slot = child;
}

/// Re-stack a peeled spine prefix (top-first order) onto `bottom`.
fn rebuild(segment: Vec<LogicalOp>, bottom: LogicalOp) -> LogicalOp {
    let mut acc = bottom;
    for mut op in segment.into_iter().rev() {
        set_spine_input(&mut op, acc);
        acc = op;
    }
    acc
}

/// Insert Exchange operators above parallel-safe expensive spine
/// segments of `plan`. Returns the rewritten plan and the number of
/// Exchanges inserted. `partitions < 2` returns the plan untouched —
/// single-threaded compilation takes the exact serial path.
pub fn parallelize(plan: LogicalOp, partitions: usize) -> (LogicalOp, usize) {
    if partitions < 2 {
        return (plan, 0);
    }
    let mut inserted = 0;
    let plan = par_plan(plan, partitions, &mut inserted);
    (plan, inserted)
}

fn par_plan(plan: LogicalOp, partitions: usize, inserted: &mut usize) -> LogicalOp {
    // Peel the transparent spine prefix (top-first); each peeled
    // operator keeps a PartitionSource placeholder where its spine
    // input was.
    let mut segment: Vec<LogicalOp> = Vec::new();
    let mut cur = plan;
    while partition_transparent(&cur) {
        let child = take_spine_input(&mut cur);
        segment.push(cur);
        cur = child;
    }

    // Pick the LOWEST expensive spine operator whose input stream is
    // not statically a singleton: splitting as low as possible puts the
    // most work inside the body and keeps the serially-drained source
    // small.
    let mut input_ts = trivially_singleton(&cur);
    let mut choice: Option<usize> = None;
    for i in (0..segment.len()).rev() {
        if spine_expensive(&segment[i]) && !input_ts {
            choice = Some(i);
            break;
        }
        input_ts = input_ts && preserves_cardinality(&segment[i]);
    }

    match choice {
        Some(i) => {
            let below = segment.split_off(i + 1);
            // The split operator's placeholder stays: it becomes the
            // body's PartitionSource leaf.
            let split_op = segment.pop().expect("split index within segment");
            let source = par_plan(rebuild(below, cur), partitions, inserted);
            let body = rebuild(segment, split_op);
            *inserted += 1;
            LogicalOp::exchange(source, body, partitions)
        }
        None => rebuild(segment, par_bottom(cur, partitions, inserted)),
    }
}

/// Recurse through a non-transparent segment boundary: the boundary
/// operator runs serially, but the pipelines feeding it may still be
/// parallelized.
fn par_bottom(plan: LogicalOp, partitions: usize, inserted: &mut usize) -> LogicalOp {
    use LogicalOp as L;
    match plan {
        L::DedupBy { input, attr } => {
            let input = par_plan(*input, partitions, inserted);
            // Partition-local pre-dedup: when the stream being deduped is
            // an Exchange, shed chunk-local duplicates inside each worker
            // before the merge materialises them. Correct because a
            // chunk-local first occurrence can never be a duplicate of a
            // *later* tuple — the global Π^D above keeps exactly the
            // stream-order first occurrence either way — and profitable
            // because the duplicate blow-up (Gottlob chains, Fig. 6–9
            // axes) is precisely what the body produces.
            let input = match input {
                L::Exchange { source, body, partitions: n } => L::Exchange {
                    source,
                    body: Box::new(L::DedupBy { input: body, attr: attr.clone() }),
                    partitions: n,
                },
                other => other,
            };
            L::DedupBy { input: Box::new(input), attr }
        }
        L::SortBy { input, attr } => L::SortBy {
            input: Box::new(par_plan(*input, partitions, inserted)),
            attr,
        },
        L::TmpCs { input, cs, group } => L::TmpCs {
            input: Box::new(par_plan(*input, partitions, inserted)),
            cs,
            group,
        },
        L::CounterMap { input, attr, reset_on } => L::CounterMap {
            input: Box::new(par_plan(*input, partitions, inserted)),
            attr,
            reset_on,
        },
        L::MemoX { input, key } => {
            L::MemoX { input: Box::new(par_plan(*input, partitions, inserted)), key }
        }
        L::Concat { parts } => L::Concat {
            parts: parts.into_iter().map(|p| par_plan(p, partitions, inserted)).collect(),
        },
        L::Cross { left, right } => {
            L::Cross { left: Box::new(par_plan(*left, partitions, inserted)), right }
        }
        // Singleton, PartitionSource, or an Exchange from a previous
        // run of the pass.
        other => other,
    }
}

/// Parallelize the aggregate plans of a top-level scalar query.
///
/// `exists()` is excluded: smart aggregation stops it after the first
/// tuple (paper §5.2.5), and an Exchange would eagerly evaluate every
/// partition, defeating the early exit. All other aggregates consume
/// their whole input, so fanning the plan out is pure gain.
pub fn parallelize_scalar(e: ScalarExpr, partitions: usize) -> (ScalarExpr, usize) {
    if partitions < 2 {
        return (e, 0);
    }
    let mut inserted = 0;
    let e = par_scalar(e, partitions, &mut inserted);
    (e, inserted)
}

fn par_scalar(e: ScalarExpr, partitions: usize, inserted: &mut usize) -> ScalarExpr {
    use algebra::scalar::AggFunc;
    use ScalarExpr as S;
    match e {
        S::Agg(mut agg) => {
            if agg.func != AggFunc::Exists {
                agg.plan = Box::new(par_plan(*agg.plan, partitions, inserted));
            }
            S::Agg(agg)
        }
        S::And(a, b) => S::And(
            Box::new(par_scalar(*a, partitions, inserted)),
            Box::new(par_scalar(*b, partitions, inserted)),
        ),
        S::Or(a, b) => S::Or(
            Box::new(par_scalar(*a, partitions, inserted)),
            Box::new(par_scalar(*b, partitions, inserted)),
        ),
        S::Not(a) => S::Not(Box::new(par_scalar(*a, partitions, inserted))),
        S::Neg(a) => S::Neg(Box::new(par_scalar(*a, partitions, inserted))),
        S::Compare { op, mode, lhs, rhs } => S::Compare {
            op,
            mode,
            lhs: Box::new(par_scalar(*lhs, partitions, inserted)),
            rhs: Box::new(par_scalar(*rhs, partitions, inserted)),
        },
        S::Arith(op, a, b) => S::Arith(
            op,
            Box::new(par_scalar(*a, partitions, inserted)),
            Box::new(par_scalar(*b, partitions, inserted)),
        ),
        S::Convert(k, a) => S::Convert(k, Box::new(par_scalar(*a, partitions, inserted))),
        S::StrFn(f, args) => {
            S::StrFn(f, args.into_iter().map(|a| par_scalar(a, partitions, inserted)).collect())
        }
        S::NumFn(f, a) => S::NumFn(f, Box::new(par_scalar(*a, partitions, inserted))),
        S::NodeFn(f, a) => S::NodeFn(f, Box::new(par_scalar(*a, partitions, inserted))),
        S::Lang(a, ctx) => S::Lang(Box::new(par_scalar(*a, partitions, inserted)), ctx),
        S::Deref(a) => S::Deref(Box::new(par_scalar(*a, partitions, inserted))),
        S::RootOf(a) => S::RootOf(Box::new(par_scalar(*a, partitions, inserted))),
        leaf @ (S::Const(_) | S::Attr(_) | S::Var(_)) => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::TranslateOptions;
    use crate::translate::{translate, CompiledQuery};
    use algebra::explain::explain;
    use xpath_syntax::frontend;

    fn plan(q: &str) -> LogicalOp {
        let opts = TranslateOptions::improved();
        match translate(&frontend(q).unwrap(), &opts).unwrap() {
            CompiledQuery::Sequence(p) => p,
            CompiledQuery::Scalar(s) => panic!("scalar {s}"),
        }
    }

    #[test]
    fn child_chain_is_distinct_and_ordered() {
        let p = plan("/a/b/c");
        // The final dedup is prunable.
        let pruned = prune(p);
        let text = explain(&pruned);
        assert!(!text.contains("Π^D"), "{text}");
    }

    #[test]
    fn attribute_step_preserves_order() {
        let pruned = prune(plan("/a/b/@id"));
        let text = explain(&pruned);
        assert!(!text.contains("Π^D"), "{text}");
    }

    #[test]
    fn descendant_from_root_is_distinct() {
        // A single descendant step from the (singleton) root: distinct,
        // so both the pushed and the final dedups go away.
        let pruned = prune(plan("/descendant::a"));
        let text = explain(&pruned);
        assert!(!text.contains("Π^D"), "{text}");
    }

    #[test]
    fn double_slash_keeps_child_distinct_but_not_parent_paths() {
        // //a = descendant-or-self::node()/child::a: child of nested
        // contexts stays distinct (single parent per node).
        let pruned = prune(plan("//a"));
        let text = explain(&pruned);
        assert!(!text.contains("Π^D"), "{text}");
        // parent::* genuinely produces duplicates: dedup must survive.
        let pruned = prune(plan("/a/b/parent::*"));
        let text = explain(&pruned);
        assert!(text.contains("Π^D"), "{text}");
    }

    #[test]
    fn descendant_of_nested_contexts_keeps_dedup() {
        // //a//b: the second descendant step starts from possibly nested
        // a's — duplicates are possible, dedup must stay.
        let pruned = prune(plan("//a//b"));
        let text = explain(&pruned);
        assert!(text.contains("Π^D"), "{text}");
    }

    #[test]
    fn filter_sort_pruned_on_ordered_input() {
        // (/a/b)[2] sorts before the positional predicate; a child chain
        // is already ordered.
        let pruned = prune(plan("(/a/b)[2]"));
        let text = explain(&pruned);
        assert!(!text.contains("Sort["), "{text}");
        // A union is not provably ordered: Sort must stay.
        let pruned = prune(plan("(/a/b | /a/c)[2]"));
        let text = explain(&pruned);
        assert!(text.contains("Sort["), "{text}");
    }

    #[test]
    fn parallelize_splits_nested_descendant_chain() {
        // //a//b: the second descendant step runs once per a — the pass
        // fans it out, keeping the inner //a as the serial source.
        let p = prune(plan("//a//b"));
        let (par, n) = parallelize(p, 4);
        assert_eq!(n, 1);
        let text = explain(&par);
        assert!(text.contains("⇶[4]"), "{text}");
        assert!(text.contains("▤"), "{text}");
    }

    #[test]
    fn parallelize_leaves_cheap_chains_serial() {
        let p = prune(plan("/a/b/c"));
        let (par, n) = parallelize(p, 4);
        assert_eq!(n, 0);
        assert!(!explain(&par).contains("⇶"));
    }

    #[test]
    fn parallelize_skips_singleton_fed_descendant() {
        // //a: one descendant scan seeded by the single root tuple —
        // partitioning a one-tuple stream cannot produce parallelism.
        let p = prune(plan("//a"));
        let (_, n) = parallelize(p, 4);
        assert_eq!(n, 0);
    }

    #[test]
    fn parallelize_fans_out_predicate_evaluation() {
        // //a[b]: the nested existence plan runs per a — the σ becomes
        // the Exchange body.
        let p = prune(plan("//a[b]"));
        let (par, n) = parallelize(p, 4);
        assert_eq!(n, 1, "{}", explain(&par));
        assert!(explain(&par).contains("⇶[4]"));
    }

    #[test]
    fn parallelize_pre_dedups_inside_workers() {
        // A Π^D directly above the Exchange is duplicated into the body:
        // workers shed chunk-local duplicates before the merge, the
        // global Π^D keeps exactly the serial survivors.
        let p = prune(plan("/a/descendant::*/ancestor::*"));
        let (par, n) = parallelize(p, 4);
        assert_eq!(n, 1);
        fn exchange_body(op: &LogicalOp) -> Option<&LogicalOp> {
            if let LogicalOp::Exchange { body, .. } = op {
                return Some(body);
            }
            op.children().into_iter().find_map(exchange_body)
        }
        let body = exchange_body(&par).expect("an Exchange was inserted");
        assert!(
            matches!(body, LogicalOp::DedupBy { .. }),
            "body root must be the partition-local Π^D: {}",
            explain(&par)
        );
    }

    #[test]
    fn parallelize_with_one_partition_is_identity() {
        let p = prune(plan("//a//b"));
        let (q, n) = parallelize(p.clone(), 1);
        assert_eq!(n, 0);
        assert_eq!(q, p);
    }

    #[test]
    fn parallelize_scalar_count_but_not_exists() {
        use algebra::scalar::{AggExpr, AggFunc};
        let p = prune(plan("//a//b"));
        let count = ScalarExpr::Agg(AggExpr {
            func: AggFunc::Count,
            plan: Box::new(p.clone()),
            over: "cn".into(),
            independent: false,
        });
        let (_, n) = parallelize_scalar(count, 4);
        assert_eq!(n, 1);
        // exists() keeps its smart-aggregation early exit.
        let exists = ScalarExpr::Agg(AggExpr {
            func: AggFunc::Exists,
            plan: Box::new(p),
            over: "cn".into(),
            independent: false,
        });
        let (_, n) = parallelize_scalar(exists, 4);
        assert_eq!(n, 0);
    }

    #[test]
    fn transition_table() {
        let all = Props::single();
        let child = axis_transition(Axis::Child, all, false);
        assert!(child.distinct && child.ordered && child.disjoint);
        let desc = axis_transition(Axis::Descendant, all, false);
        assert!(desc.distinct && desc.ordered && !desc.disjoint);
        let child_of_desc = axis_transition(Axis::Child, desc, false);
        assert!(child_of_desc.distinct && !child_of_desc.ordered);
        let attr = axis_transition(Axis::Attribute, desc, false);
        assert!(attr.distinct && attr.ordered && attr.disjoint);
        let anc = axis_transition(Axis::Ancestor, all, false);
        assert_eq!(anc, Props::none());
    }

    #[test]
    fn sibling_and_parent_transitions_from_singleton_input() {
        // Hand-computed: one context node c. following-sibling::* emits
        // c's later siblings left-to-right — document order, pairwise
        // disjoint (siblings never nest), no repeats.
        let fs = axis_transition(Axis::FollowingSibling, Props::single(), true);
        assert_eq!(fs, Props { distinct: true, ordered: true, disjoint: true });
        // preceding-sibling::* emits earlier siblings right-to-left:
        // REVERSE document order — distinct and disjoint but not ordered.
        let ps = axis_transition(Axis::PrecedingSibling, Props::single(), true);
        assert_eq!(ps, Props { distinct: true, ordered: false, disjoint: true });
        // parent of one node is at most one node: all three hold.
        let par = axis_transition(Axis::Parent, Props::single(), true);
        assert_eq!(par, Props::single());
    }

    #[test]
    fn sibling_and_parent_transitions_stay_bottom_for_multi_context() {
        // Counterexamples against the naive "preserve distinct∧disjoint"
        // generalisation. Document <r><a/><b/><c/></r>:
        // * contexts (a, b) are distinct∧disjoint∧ordered, yet their
        //   following-siblings are b,c (from a) then c (from b) — the
        //   stream b,c,c repeats c and restarts after c: neither
        //   distinct nor ordered.
        // * parents of (a, b) are r, r — duplicates.
        let multi = Props::single(); // best possible input properties…
        for axis in [Axis::FollowingSibling, Axis::PrecedingSibling, Axis::Parent] {
            // …but more than one context tuple: no guarantees survive.
            assert_eq!(axis_transition(axis, multi, false), Props::none(), "{axis:?}");
        }
    }

    #[test]
    fn parent_of_singleton_context_prunes_dedup() {
        // A top-level relative step runs against the single execution
        // context node: statically ≤ 1 context tuple.
        let pruned = prune(plan("parent::*"));
        let text = explain(&pruned);
        assert!(!text.contains("Π^D"), "{text}");
        let pruned = prune(plan("following-sibling::*"));
        let text = explain(&pruned);
        assert!(!text.contains("Π^D"), "{text}");
    }

    #[test]
    fn multi_context_sibling_and_parent_keep_dedup() {
        // /a/b yields statically many contexts: the counterexamples
        // above are reachable, so Π^D must survive.
        for q in [
            "/a/b/parent::*",
            "/a/b/following-sibling::*",
            "/a/b/preceding-sibling::*",
        ] {
            let pruned = prune(plan(q));
            let text = explain(&pruned);
            assert!(text.contains("Π^D"), "{q}:\n{text}");
        }
    }

    #[test]
    fn prune_with_report_names_elided_operators() {
        let mut report = Vec::new();
        let pruned = prune_with_report(plan("/a/b/c"), &mut report);
        assert!(!explain(&pruned).contains("Π^D"));
        assert_eq!(report, vec!["Π^D[cn]".to_owned()]);
        // Nested plans report too, and an unprunable plan reports nothing.
        let mut report = Vec::new();
        prune_with_report(plan("/a/b[parent::x]"), &mut report);
        assert!(!report.is_empty(), "child-chain dedups inside the plan get named");
        let mut report = Vec::new();
        prune_with_report(plan("/a/b/parent::*"), &mut report);
        assert!(report.is_empty(), "{report:?}");
    }
}
