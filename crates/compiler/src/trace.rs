//! Compile-phase tracing: per-phase wall-clock timings, fired rewrites
//! and plan statistics for the six-phase pipeline of paper §5.1. The
//! trace is recorded by [`crate::pipeline::compile_traced`]; later
//! phases (code generation, execution) are appended by the callers that
//! run them (the `nqe` crate and the CLI).

use algebra::explain::{nested_plans, scalar_plans};
use algebra::{LogicalOp, ScalarExpr};

use crate::cost::OptimizerTrace;
use crate::translate::CompiledQuery;

/// One timed pipeline phase.
#[derive(Clone, Debug)]
pub struct PhaseTiming {
    /// Phase name (`parse`, `semantic`, `fold`, `translate`, `prune`,
    /// `codegen`, `execute`).
    pub name: String,
    /// Wall-clock nanoseconds spent in the phase.
    pub nanos: u64,
}

/// The trace of one query compilation.
#[derive(Clone, Debug, Default)]
pub struct QueryTrace {
    /// The source query text.
    pub query: String,
    /// Timed phases, in execution order.
    pub phases: Vec<PhaseTiming>,
    /// Rewrites that actually fired (observed in the output, not merely
    /// enabled), e.g. `constant-fold`, `memoize-inner ×2`.
    pub rewrites: Vec<String>,
    /// Total operators in the final plan (nested plans included).
    pub plan_ops: usize,
    /// Depth of the final plan tree (nested plans included; 0 = empty).
    pub plan_depth: usize,
    /// Operator counts by class, descending (`[("Υ", 4), ("Π^D", 2)]`).
    pub op_counts: Vec<(String, usize)>,
    /// Operators removed by the property-based pruning extension.
    pub pruned_ops: usize,
    /// Labels of the operators the pruning extension elided, one per
    /// site in bottom-up elision order (`Π^D[cn]`, `Sort[u1]`, …).
    pub pruned_labels: Vec<String>,
    /// The cost-based optimizer's record (`None` when the pass did not
    /// run: `CostMode::Off`, or no statistics available).
    pub optimizer: Option<OptimizerTrace>,
}

impl QueryTrace {
    /// Append a timed phase.
    pub fn add_phase(&mut self, name: impl Into<String>, nanos: u64) {
        self.phases.push(PhaseTiming { name: name.into(), nanos });
    }

    /// Total traced time across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.phases.iter().map(|p| p.nanos).sum()
    }

    /// Record the final plan's statistics (operator count, depth,
    /// per-class counts).
    pub fn record_plan(&mut self, q: &CompiledQuery) {
        let roots: Vec<&LogicalOp> = match q {
            CompiledQuery::Sequence(plan) => vec![plan],
            CompiledQuery::Scalar(expr) => scalar_plans(expr),
        };
        let mut counts: Vec<(String, usize)> = Vec::new();
        let mut ops = 0usize;
        let mut depth = 0usize;
        for root in roots {
            walk(root, 1, &mut ops, &mut depth, &mut counts);
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        self.plan_ops = ops;
        self.plan_depth = depth;
        self.op_counts = counts;
    }

    /// Render the phase breakdown and plan statistics as aligned text.
    pub fn report(&self) -> String {
        let total = self.total_nanos();
        let mut out = format!("compile phases (total {}):\n", fmt_nanos(total));
        let name_w = self.phases.iter().map(|p| p.name.chars().count()).max().unwrap_or(0);
        let time_w = self
            .phases
            .iter()
            .map(|p| fmt_nanos(p.nanos).chars().count())
            .max()
            .unwrap_or(0);
        for p in &self.phases {
            let pct = if total > 0 {
                p.nanos as f64 * 100.0 / total as f64
            } else {
                0.0
            };
            let t = fmt_nanos(p.nanos);
            out.push_str(&format!("  {:<name_w$}  {t:>time_w$}  {pct:5.1}%\n", p.name));
        }
        if self.rewrites.is_empty() {
            out.push_str("rewrites: (none fired)\n");
        } else {
            out.push_str(&format!("rewrites: {}\n", self.rewrites.join(", ")));
        }
        if !self.pruned_labels.is_empty() {
            out.push_str(&format!("pruned: {}\n", self.pruned_labels.join(", ")));
        }
        if let Some(opt) = &self.optimizer {
            out.push_str(&format!(
                "optimizer: stats fp {:#018x}, {} decision{}\n",
                opt.stats_fingerprint,
                opt.decisions.len(),
                if opt.decisions.len() == 1 { "" } else { "s" }
            ));
            for d in &opt.decisions {
                out.push_str(&format!(
                    "  {} @ {}: {} (est {:.1} vs {:.1})\n",
                    d.rule, d.site, d.choice, d.est_chosen, d.est_rejected
                ));
            }
        }
        let classes: Vec<String> =
            self.op_counts.iter().map(|(k, n)| format!("{k} ×{n}")).collect();
        out.push_str(&format!(
            "plan: {} ops, depth {}  ({})\n",
            self.plan_ops,
            self.plan_depth,
            classes.join(", ")
        ));
        out
    }
}

fn walk(
    plan: &LogicalOp,
    depth: usize,
    ops: &mut usize,
    max_depth: &mut usize,
    counts: &mut Vec<(String, usize)>,
) {
    *ops += 1;
    *max_depth = (*max_depth).max(depth);
    let class = op_class(plan);
    match counts.iter_mut().find(|(k, _)| k == class) {
        Some((_, n)) => *n += 1,
        None => counts.push((class.to_owned(), 1)),
    }
    for c in plan.children() {
        walk(c, depth + 1, ops, max_depth, counts);
    }
    for nested in nested_plans(plan) {
        walk(nested, depth + 1, ops, max_depth, counts);
    }
}

/// The operator class symbol, in the paper's notation.
pub fn op_class(plan: &LogicalOp) -> &'static str {
    match plan {
        LogicalOp::Singleton => "□",
        LogicalOp::Select { .. } => "σ",
        LogicalOp::DedupBy { .. } => "Π^D",
        LogicalOp::Rename { .. } => "Π",
        LogicalOp::MapExpr { .. } | LogicalOp::CounterMap { .. } => "χ",
        LogicalOp::MemoMap { .. } => "χ^mat",
        LogicalOp::DJoin { .. } => "<>",
        LogicalOp::Cross { .. } => "×",
        LogicalOp::SemiJoin { .. } => "⋉",
        LogicalOp::AntiJoin { .. } => "▷",
        LogicalOp::UnnestMap { .. } | LogicalOp::TokenizeMap { .. } => "Υ",
        LogicalOp::Concat { .. } => "⊕",
        LogicalOp::SortBy { .. } => "Sort",
        LogicalOp::TmpCs { .. } => "Tmp^cs",
        LogicalOp::MemoX { .. } => "𝔐",
        LogicalOp::Exchange { .. } => "⇶",
        LogicalOp::PartitionSource => "▤",
    }
}

/// Count rewrites observable in the final query and record them.
pub(crate) fn record_fired_rewrites(trace: &mut QueryTrace, q: &CompiledQuery) {
    let memox = trace.op_counts.iter().find(|(k, _)| k == "𝔐").map_or(0, |(_, n)| *n);
    if memox > 0 {
        trace.rewrites.push(format!("memoize-inner ×{memox}"));
    }
    let memomap = trace.op_counts.iter().find(|(k, _)| k == "χ^mat").map_or(0, |(_, n)| *n);
    if memomap > 0 {
        trace.rewrites.push(format!("split-expensive ×{memomap}"));
    }
    if let CompiledQuery::Scalar(e) = q {
        if has_smart_agg(e) {
            trace.rewrites.push("smart-aggregation".to_owned());
        }
    }
}

fn has_smart_agg(e: &ScalarExpr) -> bool {
    matches!(e, ScalarExpr::Agg(a) if a.func == algebra::scalar::AggFunc::Exists)
}

/// Human format for a nanosecond count (`1.23ms`, `45.6µs`, `789ns`).
pub fn fmt_nanos(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_nanos_units() {
        assert_eq!(fmt_nanos(789), "789ns");
        assert_eq!(fmt_nanos(45_600), "45.6µs");
        assert_eq!(fmt_nanos(1_230_000), "1.23ms");
        assert_eq!(fmt_nanos(2_500_000_000), "2.50s");
    }

    #[test]
    fn report_shape() {
        let mut t = QueryTrace { query: "/a/b".into(), ..Default::default() };
        t.add_phase("parse", 1_000);
        t.add_phase("translate", 9_000);
        t.rewrites.push("constant-fold".into());
        t.plan_ops = 5;
        t.plan_depth = 3;
        t.op_counts = vec![("Υ".into(), 2), ("Π^D".into(), 1)];
        let r = t.report();
        assert!(r.contains("total 10.0µs"), "{r}");
        assert!(r.contains("parse"), "{r}");
        assert!(r.contains("90.0%"), "{r}");
        assert!(r.contains("constant-fold"), "{r}");
        assert!(r.contains("5 ops, depth 3"), "{r}");
        assert!(r.contains("Υ ×2"), "{r}");
        assert_eq!(t.total_nanos(), 10_000);
    }
}
