//! Translation of XPath 1.0 into the logical algebra — the paper's core
//! contribution (§3 canonical translation, §4 improved translation).
//!
//! Entry point: [`compile`] (query string → [`CompiledQuery`]), or
//! [`translate`] for an already-analyzed AST. [`TranslateOptions`] selects
//! between the canonical and improved translations and exposes each §4
//! improvement separately for ablation studies.

pub mod cost;
pub mod options;
pub mod pipeline;
pub mod properties;
pub mod trace;
pub mod translate;

pub use cost::{Decision, OpEstimate, OptimizerTrace};
pub use options::{parse_duration, parse_mem_size, CostMode, ResourceLimits, TranslateOptions};
pub use pipeline::{
    compile, compile_ast, compile_ast_with_stats, compile_traced, compile_traced_with_stats,
    compile_with_stats, cost_active, PipelineError,
};
pub use trace::{PhaseTiming, QueryTrace};
pub use translate::{translate, CompileError, CompiledQuery};
