//! Cost-based optimizer pass (ROADMAP open item 1, second half): choose
//! between the paper's translation alternatives per plan site, using
//! cardinality estimates seeded from the store's free
//! [`StructuralIndex`](xmlstore::StructuralIndex) statistics
//! ([`StoreStats`]).
//!
//! The paper applies its §4 improvements unconditionally; its own
//! Figure 10 shows them trading places with the canonical translation
//! depending on document shape and predicate selectivity. This pass
//! runs after translation (before property pruning, so both the traced
//! and untraced pipelines share it) and makes four families of
//! decisions, every one a byte-exact inverse of a translation emission
//! so the rewritten plan is always a plan some `TranslateOptions` could
//! have produced:
//!
//! * **memoize-inner** — drop a `𝔐` (MemoX) around an inner relative
//!   path when the estimated number of distinct memo keys approaches
//!   the number of probes (every probe a miss: bookkeeping with no
//!   reuse), keep it when key reuse times the inner cost beats the
//!   lookup overhead.
//! * **split-expensive** — fuse `σ[v] ∘ χ^mat[v:e]` back into `σ[e]`
//!   when the expensive clause is estimated cheap relative to the memo
//!   table's per-probe hashing and per-entry materialisation.
//! * **scan-kernel** — pin the Υ axis kernel (`hint=range|cursor`) on
//!   the four interval axes by estimated scan span: tiny spans are
//!   cheaper to walk by pointer than to probe the index for.
//! * **index-probe** — annotate the Υ under a `step[@a='v']` /
//!   `step[e='v']` predicate with a [`ProbeSpec`] when the store's
//!   persistent content index is estimated to enumerate fewer
//!   candidates than the axis scan visits nodes. The annotation is a
//!   pre-filter hint: stores without a content index (or with the name
//!   uncovered) fall back to the plain scan at runtime, so the
//!   predicate is never removed.
//! * **outer-shape** — (driven by the pipeline, which owns the AST)
//!   estimate the stacked §4.2.1 outer-path plan against the canonical
//!   d-join §3 plan and keep the cheaper whole-query shape.
//!
//! The estimator is deliberately simple — per-axis output-cardinality
//! formulas over tag counts, mean fan-out, mean subtree sizes, and a
//! unit-cost model of tuples produced plus materialisation weight. Its
//! purpose is *relative* comparison of alternatives, and every number
//! it produces is surfaced: [`estimate_operators`] emits per-operator
//! estimates in physical profile order so EXPLAIN ANALYZE can print
//! estimated vs. actual cardinalities, and every [`Decision`] carries
//! both sides' costs.

use std::collections::HashMap;

use xmlstore::{Axis, StoreStats};
use xpath_syntax::{KindTest, NodeTest};

use algebra::explain::op_label;
use algebra::scalar::AggFunc;
use algebra::{ConvKind, LogicalOp, ProbeKind, ProbeSpec, ScalarExpr, ScanHint};
use xpath_syntax::CompOp;

use crate::translate::CompiledQuery;

/// Hash probe + key compare per memo access (𝔐 and χ^mat).
const MEMO_LOOKUP: f64 = 3.0;
/// Per distinct memo entry: result clone + table growth.
const MEMO_STORE: f64 = 4.0;
/// Per-tuple hash-set insert of Π^D.
const DEDUP_UNIT: f64 = 2.0;
/// Per-tuple-per-comparison unit of Sort.
const SORT_UNIT: f64 = 4.0;
/// Fixed cost of setting up one index range scan (rank lookup +
/// interval arithmetic) per context node.
const RANGE_PROBE: f64 = 4.0;
/// Per-hop cost of the pointer-chasing cursor relative to the range
/// scan's dense-array advance (1.0).
const CURSOR_HOP: f64 = 2.0;
/// Selectivity of a comparison predicate.
const CMP_SEL: f64 = 0.25;
/// Selectivity of an equality against a constant over a content-indexed
/// name: the fraction of that name's nodes expected to carry one
/// specific value (a generic distinct-values guess, deliberately
/// pessimistic enough that probes only win when the scan is wide).
const EQ_SEL: f64 = 1.0 / 64.0;
/// Selectivity of anything we cannot classify.
const DEFAULT_SEL: f64 = 0.5;

/// One optimizer decision, with both sides' estimated costs — the
/// "visible and checkable" contract: EXPLAIN ANALYZE prints these.
#[derive(Clone, Debug, PartialEq)]
pub struct Decision {
    /// Operator label at the decision site (`𝔐[c1]`, `χ^mat[…]`, …).
    pub site: String,
    /// Decision family: `memoize-inner`, `split-expensive`,
    /// `scan-kernel`, `index-probe` or `outer-shape`.
    pub rule: &'static str,
    /// What was chosen (`keep`, `drop`, `fuse`, `range`, `cursor`,
    /// `probe`, `scan`, `stacked`, `d-join`).
    pub choice: &'static str,
    /// Estimated cost of the chosen alternative.
    pub est_chosen: f64,
    /// Estimated cost of the rejected alternative.
    pub est_rejected: f64,
}

/// The optimizer's per-query record, carried on the compile trace and
/// replayed on plan-cache hits (decisions are a property of the plan).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OptimizerTrace {
    /// Fingerprint of the statistics the decisions were made against.
    pub stats_fingerprint: u64,
    /// Every decision, in rewrite order.
    pub decisions: Vec<Decision>,
}

/// Estimated output cardinality of one operator, in physical profile
/// order (pre-order: operator, children, nested plans).
#[derive(Clone, Debug, PartialEq)]
pub struct OpEstimate {
    /// The operator label ([`op_label`] form), for pairing with profile
    /// entries.
    pub label: String,
    /// Estimated total tuples produced across all opens.
    pub est_tuples: f64,
}

/// Run the per-site cost-based rewrites over a translated query.
/// Returns the (possibly) rewritten query and the decisions taken.
/// Deterministic in (plan, stats): cache-safe.
pub fn optimize(q: CompiledQuery, stats: &StoreStats) -> (CompiledQuery, Vec<Decision>) {
    let mut opt = Optimizer { est: Estimator { stats }, decisions: Vec::new() };
    let mut env = Env::seed(stats);
    let q = match q {
        CompiledQuery::Sequence(plan) => CompiledQuery::Sequence(opt.rewrite(plan, 1.0, &mut env)),
        CompiledQuery::Scalar(expr) => {
            CompiledQuery::Scalar(opt.rewrite_scalar(expr, 1.0, &mut env))
        }
    };
    (q, opt.decisions)
}

/// Estimated total cost of a query (the pipeline's outer-shape
/// comparator).
pub fn estimate_total(q: &CompiledQuery, stats: &StoreStats) -> f64 {
    let est = Estimator { stats };
    let mut env = Env::seed(stats);
    let mut rec = Vec::new();
    match q {
        CompiledQuery::Sequence(plan) => est.est(plan, 1.0, &mut env, &mut rec).cost,
        CompiledQuery::Scalar(expr) => est.pred_cost(expr, 1.0, &mut env, &mut rec),
    }
}

/// Per-operator cardinality estimates, in the order the profiled
/// physical build registers operators (pre-order; a scalar query gets
/// its synthetic `scalar[…]` root first). EXPLAIN ANALYZE pairs these
/// positionally (label-checked) with the actual profile.
pub fn estimate_operators(q: &CompiledQuery, stats: &StoreStats) -> Vec<OpEstimate> {
    let est = Estimator { stats };
    let mut env = Env::seed(stats);
    let mut rec = Vec::new();
    match q {
        CompiledQuery::Sequence(plan) => {
            est.est(plan, 1.0, &mut env, &mut rec);
        }
        CompiledQuery::Scalar(expr) => {
            rec.push(OpEstimate { label: format!("scalar[{expr}]"), est_tuples: 1.0 });
            est.pred_cost(expr, 1.0, &mut env, &mut rec);
        }
    }
    rec
}

/// Estimation context threaded along a plan walk: per-attribute mean
/// subtree size (`scope`) and per-attribute distinct-value domain
/// (`domain`), plus the tuple count feeding a ▤ leaf inside an
/// Exchange body.
#[derive(Clone, Default)]
struct Env {
    scope: HashMap<String, f64>,
    domain: HashMap<String, f64>,
    partition_rows: f64,
}

impl Env {
    fn seed(stats: &StoreStats) -> Env {
        let mut env = Env::default();
        // The execution context binds cn to a single context node.
        env.scope.insert("cn".to_owned(), stats.mean_subtree);
        env.domain.insert("cn".to_owned(), 1.0);
        env
    }
}

/// Rows per open and total cost of one subplan.
#[derive(Clone, Copy, Debug)]
struct Est {
    rows: f64,
    cost: f64,
}

struct Estimator<'a> {
    stats: &'a StoreStats,
}

impl Estimator<'_> {
    /// Number of document nodes matching `test` on `axis`'s principal
    /// node kind.
    fn test_count(&self, axis: Axis, test: &NodeTest) -> f64 {
        let s = self.stats;
        match test {
            NodeTest::Name(n) => s.tag_count(n) as f64,
            NodeTest::Wildcard | NodeTest::NsWildcard(_) => {
                if axis == Axis::Attribute {
                    s.attribute_count as f64
                } else {
                    s.element_count as f64
                }
            }
            NodeTest::Kind(KindTest::Node) => s.node_count as f64,
            NodeTest::Kind(KindTest::Text) => s.text_count as f64,
            // Comments/PIs: rare, assume ~1% of nodes.
            NodeTest::Kind(_) => (s.node_count as f64 * 0.01).max(1.0),
        }
    }

    /// Expected axis outputs per context node.
    fn axis_card(&self, axis: Axis, test: &NodeTest, ctx_scope: f64) -> f64 {
        let s = self.stats;
        let n = s.node_count as f64;
        if n <= 1.0 {
            return 0.0;
        }
        let matches = self.test_count(axis, test);
        let non_attr = (n - s.attribute_count as f64).max(1.0);
        let elems = (s.element_count as f64).max(1.0);
        // Fraction of candidate nodes that pass the test.
        let sel = (matches / non_attr).min(1.0);
        match axis {
            // Scope-aware: a context dominating `ctx_scope` nodes expects
            // `ctx_scope · matches/n` of the matching nodes inside its
            // subtree; its children are bounded by that (this deliberately
            // upweights hub contexts like a document root with thousands
            // of record children, which a uniform fan-out estimate
            // catastrophically underestimates).
            Axis::Child => (ctx_scope * (matches / n)).min(matches),
            Axis::Attribute => (matches / elems).min(s.attribute_count as f64 / elems + 1.0),
            Axis::SelfAxis => sel.min(1.0),
            Axis::Parent => sel.min(1.0),
            Axis::Ancestor | Axis::AncestorOrSelf => {
                (f64::from(s.max_depth) / 2.0).max(1.0) * (matches / elems).min(1.0)
            }
            Axis::Descendant => ctx_scope * (matches / n),
            Axis::DescendantOrSelf => ctx_scope * (matches / n) + sel,
            Axis::Following | Axis::Preceding => matches / 2.0,
            Axis::FollowingSibling | Axis::PrecedingSibling => s.mean_fanout * 0.5 * sel,
            Axis::Namespace => 0.0,
        }
    }

    /// Nodes *visited* per context node (the scan span), independent of
    /// how many pass the test.
    fn scan_span(&self, axis: Axis, ctx_scope: f64) -> f64 {
        let s = self.stats;
        match axis {
            Axis::Child | Axis::FollowingSibling | Axis::PrecedingSibling => s.mean_fanout,
            Axis::Attribute => s.attribute_count as f64 / (s.element_count as f64).max(1.0),
            Axis::SelfAxis | Axis::Parent => 1.0,
            Axis::Ancestor | Axis::AncestorOrSelf => (f64::from(s.max_depth) / 2.0).max(1.0),
            Axis::Descendant | Axis::DescendantOrSelf => ctx_scope.max(1.0),
            Axis::Following | Axis::Preceding => (s.node_count as f64 / 2.0).max(1.0),
            Axis::Namespace => 0.0,
        }
    }

    /// Mean subtree size of the nodes a step binds.
    fn result_scope(&self, axis: Axis, test: &NodeTest) -> f64 {
        match axis {
            Axis::Attribute | Axis::Namespace => 0.0,
            _ => match test {
                NodeTest::Name(n) => self.stats.tag_mean_subtree(n),
                NodeTest::Wildcard | NodeTest::NsWildcard(_) | NodeTest::Kind(KindTest::Node) => {
                    self.stats.mean_subtree
                }
                NodeTest::Kind(_) => 0.0,
            },
        }
    }

    /// Record + estimate one plan, pre-order (operator, children,
    /// nested), mirroring the profiled physical build.
    fn est(&self, plan: &LogicalOp, opens: f64, env: &mut Env, rec: &mut Vec<OpEstimate>) -> Est {
        let slot = rec.len();
        rec.push(OpEstimate { label: op_label(plan), est_tuples: 0.0 });
        let e = self.est_inner(plan, opens, env, rec);
        rec[slot].est_tuples = sane(opens * e.rows);
        Est { rows: sane(e.rows), cost: sane(e.cost) }
    }

    fn est_inner(
        &self,
        plan: &LogicalOp,
        opens: f64,
        env: &mut Env,
        rec: &mut Vec<OpEstimate>,
    ) -> Est {
        use LogicalOp as L;
        match plan {
            L::Singleton => Est { rows: 1.0, cost: 0.0 },
            L::Select { input, pred } => {
                let i = self.est(input, opens, env, rec);
                let per = self.pred_cost(pred, opens * i.rows, env, rec);
                Est {
                    rows: i.rows * self.pred_sel(pred),
                    cost: i.cost + i.rows * per,
                }
            }
            L::DedupBy { input, attr } => {
                let i = self.est(input, opens, env, rec);
                let rows = env.domain.get(attr).map_or(i.rows, |d| i.rows.min(*d));
                Est { rows, cost: i.cost + i.rows * DEDUP_UNIT }
            }
            L::Rename { input, from, to } => {
                let i = self.est(input, opens, env, rec);
                if let Some(s) = env.scope.get(from).copied() {
                    env.scope.insert(to.clone(), s);
                }
                if let Some(d) = env.domain.get(from).copied() {
                    env.domain.insert(to.clone(), d);
                }
                Est { rows: i.rows, cost: i.cost + i.rows * 0.1 }
            }
            L::MapExpr { input, attr, expr } => {
                let i = self.est(input, opens, env, rec);
                match expr {
                    ScalarExpr::RootOf(_) => {
                        env.scope
                            .insert(attr.clone(), (self.stats.node_count as f64 - 1.0).max(0.0));
                        env.domain.insert(attr.clone(), 1.0);
                    }
                    ScalarExpr::Attr(src) => {
                        if let Some(s) = env.scope.get(src).copied() {
                            env.scope.insert(attr.clone(), s);
                        }
                        if let Some(d) = env.domain.get(src).copied() {
                            env.domain.insert(attr.clone(), d);
                        }
                    }
                    _ => {}
                }
                let per = self.pred_cost(expr, opens * i.rows, env, rec);
                Est { rows: i.rows, cost: i.cost + i.rows * (0.5 + per) }
            }
            L::CounterMap { input, .. } => {
                let i = self.est(input, opens, env, rec);
                Est { rows: i.rows, cost: i.cost + i.rows * 0.5 }
            }
            L::MemoMap { input, expr, key, .. } => {
                let i = self.est(input, opens, env, rec);
                let probes = opens * i.rows;
                let per = self.pred_cost(expr, probes, env, rec);
                let (_, distinct) = memo_shape(probes, env.domain.get(key).copied());
                // Total across opens, normalised back to per-open cost.
                let total = probes * MEMO_LOOKUP + distinct * (per + MEMO_STORE);
                Est { rows: i.rows, cost: i.cost + total / opens.max(1.0) }
            }
            L::DJoin { left, right } | L::Cross { left, right } => {
                let l = self.est(left, opens, env, rec);
                let r = self.est(right, opens * l.rows, env, rec);
                Est { rows: l.rows * r.rows, cost: l.cost + l.rows * r.cost }
            }
            L::SemiJoin { left, right, pred } | L::AntiJoin { left, right, pred } => {
                let l = self.est(left, opens, env, rec);
                // The right side is re-opened per left tuple and drained
                // until the predicate settles — assume half on average.
                let r = self.est(right, opens * l.rows * 0.5, env, rec);
                let per = self.pred_cost(pred, opens * l.rows, env, rec);
                Est {
                    rows: l.rows * 0.5,
                    cost: l.cost + l.rows * (r.cost * 0.5 + per),
                }
            }
            L::UnnestMap { input, context, attr, axis, test, .. } => {
                let i = self.est(input, opens, env, rec);
                let ctx_scope = env.scope.get(context).copied().unwrap_or(self.stats.mean_subtree);
                let card = self.axis_card(*axis, test, ctx_scope);
                env.scope.insert(attr.clone(), self.result_scope(*axis, test));
                env.domain.insert(attr.clone(), self.test_count(*axis, test).max(1.0));
                let span = self.scan_span(*axis, ctx_scope);
                Est {
                    rows: i.rows * card,
                    cost: i.cost + i.rows * (span.max(card) + card),
                }
            }
            L::TokenizeMap { input, expr, .. } => {
                let i = self.est(input, opens, env, rec);
                let per = self.pred_cost(expr, opens * i.rows, env, rec);
                Est { rows: i.rows * 3.0, cost: i.cost + i.rows * (per + 3.0) }
            }
            L::Concat { parts } => {
                let mut rows = 0.0;
                let mut cost = 0.0;
                for p in parts {
                    let e = self.est(p, opens, env, rec);
                    rows += e.rows;
                    cost += e.cost;
                }
                Est { rows, cost }
            }
            L::SortBy { input, .. } => {
                let i = self.est(input, opens, env, rec);
                let cmp = i.rows.max(2.0).log2();
                Est { rows: i.rows, cost: i.cost + i.rows * SORT_UNIT * cmp }
            }
            L::TmpCs { input, .. } => {
                let i = self.est(input, opens, env, rec);
                Est { rows: i.rows, cost: i.cost + i.rows * 2.0 }
            }
            L::MemoX { input, key } => {
                // Cross-open memo: the inner plan actually runs once per
                // distinct key, not once per open.
                let (probes, distinct) = memo_shape(opens, env.domain.get(key).copied());
                let i = self.est(input, distinct.min(opens).max(1.0), env, rec);
                let total = probes * MEMO_LOOKUP + distinct * (i.cost + i.rows * MEMO_STORE);
                Est { rows: i.rows, cost: total / opens.max(1.0) }
            }
            L::Exchange { source, body, .. } => {
                let s = self.est(source, opens, env, rec);
                env.partition_rows = s.rows;
                let b = self.est(body, opens, env, rec);
                Est { rows: b.rows, cost: s.cost + b.cost }
            }
            L::PartitionSource => Est { rows: env.partition_rows, cost: 0.0 },
        }
    }

    /// Per-evaluation cost of a scalar expression; nested plan
    /// estimates are recorded with `evals` opens (the number of times
    /// the expression runs).
    fn pred_cost(
        &self,
        e: &ScalarExpr,
        evals: f64,
        env: &mut Env,
        rec: &mut Vec<OpEstimate>,
    ) -> f64 {
        use ScalarExpr as S;
        match e {
            S::Const(_) | S::Attr(_) | S::Var(_) => 0.1,
            S::Agg(agg) => {
                // Smart aggregation (exists) terminates early.
                let discount = if agg.func == AggFunc::Exists {
                    0.5
                } else {
                    1.0
                };
                let mut inner_env = env.clone();
                let inner = self.est(&agg.plan, evals * discount, &mut inner_env, rec);
                1.0 + inner.cost * discount
            }
            S::And(a, b) | S::Or(a, b) => {
                // Short-circuit: the second operand runs for part of the
                // stream only.
                let ca = self.pred_cost(a, evals, env, rec);
                let cb = self.pred_cost(b, evals * 0.5, env, rec);
                0.1 + ca + cb * 0.5
            }
            S::Compare { lhs, rhs, .. } | S::Arith(_, lhs, rhs) => {
                0.2 + self.pred_cost(lhs, evals, env, rec) + self.pred_cost(rhs, evals, env, rec)
            }
            S::Not(a) | S::Neg(a) | S::Convert(_, a) | S::NumFn(_, a) | S::NodeFn(_, a) => {
                0.1 + self.pred_cost(a, evals, env, rec)
            }
            S::Lang(a, _) | S::Deref(a) | S::RootOf(a) => 0.3 + self.pred_cost(a, evals, env, rec),
            S::StrFn(_, args) => {
                0.3 + args.iter().map(|a| self.pred_cost(a, evals, env, rec)).sum::<f64>()
            }
        }
    }

    /// Selectivity of a predicate.
    fn pred_sel(&self, e: &ScalarExpr) -> f64 {
        use ScalarExpr as S;
        match e {
            S::Const(c) => {
                if c.to_value().to_bool() {
                    1.0
                } else {
                    0.0
                }
            }
            S::Compare { .. } => CMP_SEL,
            S::And(a, b) => self.pred_sel(a) * self.pred_sel(b),
            S::Or(a, b) => {
                let (sa, sb) = (self.pred_sel(a), self.pred_sel(b));
                (sa + sb - sa * sb).min(1.0)
            }
            S::Not(a) => 1.0 - self.pred_sel(a),
            S::Agg(agg) if agg.func == AggFunc::Exists => DEFAULT_SEL,
            _ => DEFAULT_SEL,
        }
    }
}

/// Probe count and estimated distinct keys of a memo structure.
fn memo_shape(probes: f64, domain: Option<f64>) -> (f64, f64) {
    let probes = probes.max(1.0);
    let distinct = domain.unwrap_or(probes).max(1.0).min(probes);
    (probes, distinct)
}

fn sane(v: f64) -> f64 {
    if v.is_finite() {
        v.clamp(0.0, 1e15)
    } else {
        1e15
    }
}

fn interval_axis(axis: Axis) -> bool {
    matches!(
        axis,
        Axis::Descendant | Axis::DescendantOrSelf | Axis::Following | Axis::Preceding
    )
}

// ========================= the rewrite pass =========================

struct Optimizer<'a> {
    est: Estimator<'a>,
    decisions: Vec<Decision>,
}

impl Optimizer<'_> {
    /// Estimate a subplan without touching the live environment or the
    /// estimate recording.
    fn probe(&self, plan: &LogicalOp, opens: f64, env: &Env) -> Est {
        let mut env = env.clone();
        let mut rec = Vec::new();
        self.est.est(plan, opens, &mut env, &mut rec)
    }

    fn rewrite(&mut self, plan: LogicalOp, opens: f64, env: &mut Env) -> LogicalOp {
        use LogicalOp as L;
        match plan {
            L::Select { input, pred } => {
                let input = self.rewrite(*input, opens, env);
                let in_rows = self.probe(&input, opens, env).rows;
                let pred = self.rewrite_scalar(pred, opens * in_rows, env);
                let fused = self.try_fuse_split(input, pred, opens, env);
                self.try_index_probe(fused, env)
            }
            L::MemoX { input, key } => {
                let input = self.rewrite(*input, opens, env);
                let inner = self.probe(&input, 1.0, env);
                let (probes, distinct) = memo_shape(opens, env.domain.get(&key).copied());
                let keep = probes * MEMO_LOOKUP + distinct * (inner.cost + inner.rows * MEMO_STORE);
                let drop = probes * inner.cost;
                let site = format!("𝔐[{key}]");
                if keep <= drop {
                    self.decisions.push(Decision {
                        site,
                        rule: "memoize-inner",
                        choice: "keep",
                        est_chosen: keep,
                        est_rejected: drop,
                    });
                    L::MemoX { input: Box::new(input), key }
                } else {
                    self.decisions.push(Decision {
                        site,
                        rule: "memoize-inner",
                        choice: "drop",
                        est_chosen: drop,
                        est_rejected: keep,
                    });
                    input
                }
            }
            L::UnnestMap { input, context, attr, axis, test, hint, probe } => {
                let input = self.rewrite(*input, opens, env);
                let ctx_scope =
                    env.scope.get(&context).copied().unwrap_or(self.est.stats.mean_subtree);
                let hint = if interval_axis(axis) {
                    let span = self.est.scan_span(axis, ctx_scope);
                    let range = RANGE_PROBE + span;
                    let cursor = span * CURSOR_HOP;
                    let site = format!("Υ[{attr}:{context}/{axis}::{test}]");
                    if cursor < range {
                        self.decisions.push(Decision {
                            site,
                            rule: "scan-kernel",
                            choice: "cursor",
                            est_chosen: cursor,
                            est_rejected: range,
                        });
                        ScanHint::Cursor
                    } else {
                        self.decisions.push(Decision {
                            site,
                            rule: "scan-kernel",
                            choice: "range",
                            est_chosen: range,
                            est_rejected: cursor,
                        });
                        ScanHint::Range
                    }
                } else {
                    hint
                };
                env.scope.insert(attr.clone(), self.est.result_scope(axis, &test));
                env.domain.insert(attr.clone(), self.est.test_count(axis, &test).max(1.0));
                L::UnnestMap {
                    input: Box::new(input),
                    context,
                    attr,
                    axis,
                    test,
                    hint,
                    probe,
                }
            }
            L::DJoin { left, right } => {
                let left = self.rewrite(*left, opens, env);
                let l_rows = self.probe(&left, opens, env).rows;
                let right = self.rewrite(*right, opens * l_rows, env);
                L::DJoin { left: Box::new(left), right: Box::new(right) }
            }
            L::Cross { left, right } => {
                let left = self.rewrite(*left, opens, env);
                let l_rows = self.probe(&left, opens, env).rows;
                let right = self.rewrite(*right, opens * l_rows, env);
                L::Cross { left: Box::new(left), right: Box::new(right) }
            }
            L::SemiJoin { left, right, pred } => {
                let left = self.rewrite(*left, opens, env);
                let l_rows = self.probe(&left, opens, env).rows;
                let right = self.rewrite(*right, opens * l_rows, env);
                let pred = self.rewrite_scalar(pred, opens * l_rows, env);
                L::SemiJoin { left: Box::new(left), right: Box::new(right), pred }
            }
            L::AntiJoin { left, right, pred } => {
                let left = self.rewrite(*left, opens, env);
                let l_rows = self.probe(&left, opens, env).rows;
                let right = self.rewrite(*right, opens * l_rows, env);
                let pred = self.rewrite_scalar(pred, opens * l_rows, env);
                L::AntiJoin { left: Box::new(left), right: Box::new(right), pred }
            }
            L::MemoMap { input, attr, expr, key } => {
                let input = self.rewrite(*input, opens, env);
                let in_rows = self.probe(&input, opens, env).rows;
                let expr = self.rewrite_scalar(expr, opens * in_rows, env);
                L::MemoMap { input: Box::new(input), attr, expr, key }
            }
            L::MapExpr { input, attr, expr } => {
                let input = self.rewrite(*input, opens, env);
                let in_rows = self.probe(&input, opens, env).rows;
                match &expr {
                    ScalarExpr::RootOf(_) => {
                        env.scope.insert(
                            attr.clone(),
                            (self.est.stats.node_count as f64 - 1.0).max(0.0),
                        );
                        env.domain.insert(attr.clone(), 1.0);
                    }
                    ScalarExpr::Attr(src) => {
                        if let Some(s) = env.scope.get(src).copied() {
                            env.scope.insert(attr.clone(), s);
                        }
                        if let Some(d) = env.domain.get(src).copied() {
                            env.domain.insert(attr.clone(), d);
                        }
                    }
                    _ => {}
                }
                let expr = self.rewrite_scalar(expr, opens * in_rows, env);
                L::MapExpr { input: Box::new(input), attr, expr }
            }
            L::Rename { input, from, to } => {
                let input = self.rewrite(*input, opens, env);
                if let Some(s) = env.scope.get(&from).copied() {
                    env.scope.insert(to.clone(), s);
                }
                if let Some(d) = env.domain.get(&from).copied() {
                    env.domain.insert(to.clone(), d);
                }
                L::Rename { input: Box::new(input), from, to }
            }
            L::DedupBy { input, attr } => {
                L::DedupBy { input: Box::new(self.rewrite(*input, opens, env)), attr }
            }
            L::CounterMap { input, attr, reset_on } => L::CounterMap {
                input: Box::new(self.rewrite(*input, opens, env)),
                attr,
                reset_on,
            },
            L::TokenizeMap { input, attr, expr } => {
                let input = self.rewrite(*input, opens, env);
                let in_rows = self.probe(&input, opens, env).rows;
                let expr = self.rewrite_scalar(expr, opens * in_rows, env);
                L::TokenizeMap { input: Box::new(input), attr, expr }
            }
            L::Concat { parts } => L::Concat {
                parts: parts.into_iter().map(|p| self.rewrite(p, opens, env)).collect(),
            },
            L::SortBy { input, attr } => {
                L::SortBy { input: Box::new(self.rewrite(*input, opens, env)), attr }
            }
            L::TmpCs { input, cs, group } => {
                L::TmpCs { input: Box::new(self.rewrite(*input, opens, env)), cs, group }
            }
            L::Exchange { source, body, partitions } => L::Exchange {
                source: Box::new(self.rewrite(*source, opens, env)),
                body: Box::new(self.rewrite(*body, opens, env)),
                partitions,
            },
            leaf @ (L::Singleton | L::PartitionSource) => leaf,
        }
    }

    /// The split-expensive inverse: `σ[v] ∘ χ^mat[v:e key k]` → `σ[e]`
    /// when the memo cannot pay for itself. Byte-exact: the fused form
    /// is precisely the `split_expensive: false` emission.
    fn try_fuse_split(
        &mut self,
        input: LogicalOp,
        pred: ScalarExpr,
        opens: f64,
        env: &Env,
    ) -> LogicalOp {
        use LogicalOp as L;
        let (inner, attr, expr, key) = match (input, pred) {
            (L::MemoMap { input, attr, expr, key }, ScalarExpr::Attr(v)) if v == attr => {
                (input, attr, expr, key)
            }
            (input, pred) => return L::Select { input: Box::new(input), pred },
        };
        let i = self.probe(&inner, opens, env);
        let (probes, distinct) = memo_shape(opens * i.rows, env.domain.get(&key).copied());
        let mut env2 = env.clone();
        let mut rec = Vec::new();
        let per = self.est.pred_cost(&expr, probes, &mut env2, &mut rec);
        let split = probes * MEMO_LOOKUP + distinct * (per + MEMO_STORE);
        let unsplit = probes * per;
        let site = format!("χ^mat[{attr}:{expr} key {key}]");
        if split <= unsplit {
            self.decisions.push(Decision {
                site,
                rule: "split-expensive",
                choice: "keep",
                est_chosen: split,
                est_rejected: unsplit,
            });
            L::Select {
                input: Box::new(L::MemoMap { input: inner, attr: attr.clone(), expr, key }),
                pred: ScalarExpr::Attr(attr),
            }
        } else {
            self.decisions.push(Decision {
                site,
                rule: "split-expensive",
                choice: "fuse",
                est_chosen: unsplit,
                est_rejected: split,
            });
            L::Select { input: inner, pred: expr }
        }
    }

    /// The content-index pre-filter: annotate the Υ feeding a
    /// `step[@a='v']` / `step[e='v']` predicate with a [`ProbeSpec`]
    /// when the persistent content index is expected to enumerate fewer
    /// candidates than the axis scan visits nodes. Recognises both the
    /// fused (`σ[𝔄] ∘ Π[cn:u] ∘ Υ`) and kept-split
    /// (`σ[m] ∘ χ^mat[m:𝔄 key u] ∘ Π[cn:u] ∘ Υ`) emissions of the
    /// improved translation; anything else passes through untouched.
    /// The probe is a candidate pre-filter only — stores without a
    /// content index reject it at runtime and the kernel falls back to
    /// the plain scan, so the predicate always stays in the plan.
    fn try_index_probe(&mut self, mut plan: LogicalOp, env: &Env) -> LogicalOp {
        let Some((spec, context, attr, axis, test)) = match_probe_site(&plan) else {
            return plan;
        };
        let ctx_scope = env.scope.get(context).copied().unwrap_or(self.est.stats.mean_subtree);
        let card = self.est.axis_card(axis, test, ctx_scope);
        let span = self.est.scan_span(axis, ctx_scope);
        let scan = span.max(card) + card;
        // The probe enumerates the postings of one (name, value) key
        // clipped to the context's subtree window: the key's node count
        // times an equality selectivity, scaled by the fraction of the
        // document the context dominates.
        let n = (self.est.stats.node_count as f64).max(1.0);
        let window = (ctx_scope / n).min(1.0);
        let candidates = self.est.stats.tag_count(&spec.name) as f64 * EQ_SEL * window;
        let probe = RANGE_PROBE + candidates;
        let site = format!("Υ[{attr}:{context}/{axis}::{test}]");
        if probe <= scan {
            self.decisions.push(Decision {
                site,
                rule: "index-probe",
                choice: "probe",
                est_chosen: probe,
                est_rejected: scan,
            });
            set_probe(&mut plan, spec);
        } else {
            self.decisions.push(Decision {
                site,
                rule: "index-probe",
                choice: "scan",
                est_chosen: scan,
                est_rejected: probe,
            });
        }
        plan
    }

    fn rewrite_scalar(&mut self, e: ScalarExpr, opens: f64, env: &mut Env) -> ScalarExpr {
        use ScalarExpr as S;
        match e {
            S::Agg(mut agg) => {
                let mut inner_env = env.clone();
                agg.plan = Box::new(self.rewrite(*agg.plan, opens, &mut inner_env));
                S::Agg(agg)
            }
            S::And(a, b) => S::And(
                Box::new(self.rewrite_scalar(*a, opens, env)),
                Box::new(self.rewrite_scalar(*b, opens * 0.5, env)),
            ),
            S::Or(a, b) => S::Or(
                Box::new(self.rewrite_scalar(*a, opens, env)),
                Box::new(self.rewrite_scalar(*b, opens * 0.5, env)),
            ),
            S::Not(a) => S::Not(Box::new(self.rewrite_scalar(*a, opens, env))),
            S::Neg(a) => S::Neg(Box::new(self.rewrite_scalar(*a, opens, env))),
            S::Compare { op, mode, lhs, rhs } => S::Compare {
                op,
                mode,
                lhs: Box::new(self.rewrite_scalar(*lhs, opens, env)),
                rhs: Box::new(self.rewrite_scalar(*rhs, opens, env)),
            },
            S::Arith(op, a, b) => S::Arith(
                op,
                Box::new(self.rewrite_scalar(*a, opens, env)),
                Box::new(self.rewrite_scalar(*b, opens, env)),
            ),
            S::Convert(k, a) => S::Convert(k, Box::new(self.rewrite_scalar(*a, opens, env))),
            S::StrFn(f, args) => {
                S::StrFn(f, args.into_iter().map(|a| self.rewrite_scalar(a, opens, env)).collect())
            }
            S::NumFn(f, a) => S::NumFn(f, Box::new(self.rewrite_scalar(*a, opens, env))),
            S::NodeFn(f, a) => S::NodeFn(f, Box::new(self.rewrite_scalar(*a, opens, env))),
            S::Lang(a, ctx) => S::Lang(Box::new(self.rewrite_scalar(*a, opens, env)), ctx),
            S::Deref(a) => S::Deref(Box::new(self.rewrite_scalar(*a, opens, env))),
            S::RootOf(a) => S::RootOf(Box::new(self.rewrite_scalar(*a, opens, env))),
            leaf @ (S::Const(_) | S::Attr(_) | S::Var(_)) => leaf,
        }
    }
}

/// Match a Select whose predicate is a single value-equality step
/// predicate over the Υ below it, returning the probe spec plus the
/// outer Υ's shape (context attribute, defined attribute, axis, test)
/// for cost estimation. `None` when the plan is any other shape.
fn match_probe_site(plan: &LogicalOp) -> Option<(ProbeSpec, &str, &str, Axis, &NodeTest)> {
    use LogicalOp as L;
    let L::Select { input, pred } = plan else {
        return None;
    };
    // Both emissions end in `Π[cn:u] ∘ Υ[u:…]`; the kept-split form has
    // the χ^mat (keyed on u) between σ and Π.
    let (rename, agg, memo_key) = match (&**input, pred) {
        (L::MemoMap { input, attr, expr: ScalarExpr::Agg(a), key }, ScalarExpr::Attr(v))
            if v == attr =>
        {
            (&**input, a, Some(key.as_str()))
        }
        (r @ L::Rename { .. }, ScalarExpr::Agg(a)) => (r, a, None),
        _ => return None,
    };
    let L::Rename { input, from, to } = rename else {
        return None;
    };
    if to != "cn" || memo_key.is_some_and(|k| k != from) {
        return None;
    }
    let L::UnnestMap { context, attr, axis, test, probe, .. } = &**input else {
        return None;
    };
    if attr != from
        || probe.is_some()
        || !matches!(*axis, Axis::Child | Axis::Descendant | Axis::DescendantOrSelf)
    {
        return None;
    }
    let spec = match_probe_pred(agg)?;
    Some((spec, context.as_str(), attr.as_str(), *axis, test))
}

/// Match the nested `𝔄[Exists](σ[string(v) = 'c'] ∘ <>(χ[s:cn] ∘ □, Υ[v:s/axis::name] ∘ □))`
/// aggregate the predicate translation emits for `[@a='v']` / `[e='v']`
/// and extract the (kind, name, value) probe key.
fn match_probe_pred(agg: &algebra::AggExpr) -> Option<ProbeSpec> {
    use LogicalOp as L;
    if agg.func != AggFunc::Exists {
        return None;
    }
    let L::Select { input, pred } = &*agg.plan else {
        return None;
    };
    let L::DJoin { left, right } = &**input else {
        return None;
    };
    let L::MapExpr { input: ml, attr: step_ctx, expr: ScalarExpr::Attr(src) } = &**left else {
        return None;
    };
    if !matches!(&**ml, L::Singleton) || src != "cn" {
        return None;
    }
    let L::UnnestMap { input: ui, context, attr, axis, test, probe, .. } = &**right else {
        return None;
    };
    if !matches!(&**ui, L::Singleton) || context != step_ctx || attr != &agg.over || probe.is_some()
    {
        return None;
    }
    let kind = match axis {
        Axis::Attribute => ProbeKind::Attribute,
        Axis::Child => ProbeKind::Element,
        _ => return None,
    };
    let NodeTest::Name(name) = test else {
        return None;
    };
    let value = eq_const_value(pred, &agg.over)?;
    if value.len() > xmlstore::VALUE_CAP {
        // The store never indexes over-length values; a probe would
        // only ever fall back to the scan at runtime.
        return None;
    }
    Some(ProbeSpec { kind, name: name.clone(), value })
}

/// `string(over) = 'v'` (either operand order) → `v`.
fn eq_const_value(pred: &ScalarExpr, over: &str) -> Option<String> {
    let ScalarExpr::Compare { op: CompOp::Eq, lhs, rhs, .. } = pred else {
        return None;
    };
    if is_string_of(lhs, over) {
        const_str(rhs)
    } else if is_string_of(rhs, over) {
        const_str(lhs)
    } else {
        None
    }
}

fn is_string_of(e: &ScalarExpr, over: &str) -> bool {
    match e {
        ScalarExpr::Convert(ConvKind::ToString, a) => {
            matches!(&**a, ScalarExpr::Attr(x) if x == over)
        }
        _ => false,
    }
}

fn const_str(e: &ScalarExpr) -> Option<String> {
    match e {
        ScalarExpr::Const(algebra::Const::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

/// Drill back down to the outer Υ a successful [`match_probe_site`]
/// found and attach the probe annotation. The shape was just verified,
/// so every arm simply retraces it.
fn set_probe(plan: &mut LogicalOp, spec: ProbeSpec) {
    use LogicalOp as L;
    let L::Select { input, .. } = plan else {
        return;
    };
    let rename = match &mut **input {
        L::MemoMap { input, .. } => &mut **input,
        r @ L::Rename { .. } => r,
        _ => return,
    };
    let L::Rename { input, .. } = rename else {
        return;
    };
    if let L::UnnestMap { probe, .. } = &mut **input {
        *probe = Some(spec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlstore::gen::{generate_dblp, DblpParams};
    use xmlstore::XmlStore;

    use crate::options::TranslateOptions;
    use crate::pipeline::compile;

    fn dblp_stats() -> StoreStats {
        let store = generate_dblp(DblpParams { records: 50, seed: 7 });
        store.structural_index().unwrap().stats().clone()
    }

    #[test]
    fn estimates_scale_with_the_document() {
        let small = generate_dblp(DblpParams { records: 5, seed: 7 });
        let large = generate_dblp(DblpParams { records: 100, seed: 7 });
        let q = compile("/dblp/article/title", &TranslateOptions::improved()).unwrap();
        let cs = estimate_total(&q, small.structural_index().unwrap().stats());
        let cl = estimate_total(&q, large.structural_index().unwrap().stats());
        assert!(cl > cs, "bigger document, bigger estimate ({cs} vs {cl})");
    }

    #[test]
    fn operator_estimates_are_preorder_and_labelled() {
        let stats = dblp_stats();
        let q = compile("/dblp/article/title", &TranslateOptions::improved()).unwrap();
        let ests = estimate_operators(&q, &stats);
        assert!(!ests.is_empty());
        // The root of an improved sequence plan is the final dedup or a
        // rename; every entry carries a non-empty label and a finite
        // estimate.
        for e in &ests {
            assert!(!e.label.is_empty());
            assert!(e.est_tuples.is_finite() && e.est_tuples >= 0.0, "{e:?}");
        }
    }

    #[test]
    fn scalar_estimates_start_with_the_synthetic_root() {
        let stats = dblp_stats();
        let q = compile("count(/dblp/article)", &TranslateOptions::improved()).unwrap();
        let ests = estimate_operators(&q, &stats);
        assert!(ests[0].label.starts_with("scalar["), "{:?}", ests[0].label);
        assert!(ests.len() > 1, "nested plan operators follow");
    }

    #[test]
    fn optimize_records_decisions_and_preserves_off_mode_inverses() {
        let stats = dblp_stats();
        // A nested-path predicate: improved translation memoizes the
        // inner path (𝔐) and splits the expensive clause (χ^mat).
        let q =
            compile("/dblp/article[author/text()]/title", &TranslateOptions::improved()).unwrap();
        let (opt, decisions) = optimize(q, &stats);
        assert!(!decisions.is_empty(), "at least the scan/memo sites decide");
        for d in &decisions {
            assert!(d.est_chosen <= d.est_rejected, "chosen side must be the cheaper: {d:?}");
            assert!(
                matches!(
                    d.rule,
                    "memoize-inner"
                        | "split-expensive"
                        | "scan-kernel"
                        | "index-probe"
                        | "outer-shape"
                ),
                "{d:?}"
            );
        }
        // Whatever was decided, the result is still a valid plan.
        match opt {
            CompiledQuery::Sequence(p) => {
                assert!(p.op_count() > 0);
            }
            CompiledQuery::Scalar(_) => panic!("path query is sequence-valued"),
        }
    }

    #[test]
    fn value_predicates_get_probe_annotations() {
        let stats = dblp_stats();
        for (query, rendered) in [
            ("/dblp/article[@key='x']/title", "probe=@key='x'"),
            ("/dblp/article[year='2002']/author", "probe=year='2002'"),
        ] {
            let q = compile(query, &TranslateOptions::improved()).unwrap();
            let (opt, decisions) = optimize(q, &stats);
            let d = decisions
                .iter()
                .find(|d| d.rule == "index-probe")
                .unwrap_or_else(|| panic!("{query}: no index-probe decision in {decisions:?}"));
            assert_eq!(d.choice, "probe", "{query}: dblp root is a hub, probe must win: {d:?}");
            let CompiledQuery::Sequence(plan) = opt else {
                panic!("sequence query")
            };
            let text = algebra::explain(&plan);
            assert!(text.contains(rendered), "{query}: probe missing from plan:\n{text}");
        }
    }

    #[test]
    fn structural_predicates_are_never_probe_annotated() {
        let stats = dblp_stats();
        // No value equality → no probe site, not even a decision.
        let q =
            compile("/dblp/article[author/text()]/title", &TranslateOptions::improved()).unwrap();
        let (opt, decisions) = optimize(q, &stats);
        assert!(decisions.iter().all(|d| d.rule != "index-probe"), "{decisions:?}");
        let CompiledQuery::Sequence(plan) = opt else {
            panic!("sequence query")
        };
        assert!(!algebra::explain(&plan).contains("probe="));
    }

    #[test]
    fn memo_drop_is_the_exact_memoize_off_emission() {
        let stats = dblp_stats();
        let on = compile("//article[author/text()]", &TranslateOptions::improved()).unwrap();
        let off = compile(
            "//article[author/text()]",
            &TranslateOptions { memoize_inner: false, ..TranslateOptions::improved() },
        )
        .unwrap();
        let (opt, decisions) = optimize(on, &stats);
        let memo = decisions.iter().find(|d| d.rule == "memoize-inner");
        if let Some(d) = memo {
            if d.choice == "drop" {
                // After also fusing/rehinting `off` the shapes must agree;
                // compare through a fresh optimize of the off-plan, which
                // has no MemoX to decide about.
                let (off_opt, off_decisions) = optimize(off, &stats);
                assert!(off_decisions.iter().all(|d| d.rule != "memoize-inner"));
                assert_eq!(opt, off_opt, "drop must reproduce the memoize_inner=false plan");
            }
        }
    }
}
