//! The translation 𝒯[·] of XPath into the algebra (paper §3) with the
//! §4 improvements (stacked outer paths, duplicate-elimination pushdown,
//! MemoX for inner paths, cheap/expensive predicate splitting).
//!
//! Conventions (paper §2.2.2/§3.1): sequence-valued translations bind
//! their result nodes to an attribute returned alongside the plan; the
//! top-level wrapper renames it to `cn` and adds the final duplicate
//! elimination. The context node of the whole query is the free attribute
//! `cn`, bound by the execution context.

use xmlstore::Axis;
use xpath_syntax::normalize::{normalize_predicate, NormPredicate};
use xpath_syntax::semantic::static_type;
use xpath_syntax::{CompOp, Expr, PathExpr, PathStart, Predicate, Step, XPathType};

use algebra::scalar::{AggExpr, AggFunc, CmpMode, ConvKind, NodeFn, NumFn, StrFn};
use algebra::{Attr, LogicalOp, ScalarExpr, ScanHint};

use crate::options::TranslateOptions;

/// Error raised during translation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

fn err<T>(message: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError { message: message.into() })
}

/// A fully translated query.
#[derive(Clone, Debug, PartialEq)]
pub enum CompiledQuery {
    /// Sequence-valued: the plan's result nodes are in attribute `cn`,
    /// duplicate-free.
    Sequence(LogicalOp),
    /// Scalar-valued (boolean/number/string); may embed nested plans.
    Scalar(ScalarExpr),
}

/// Positional context of the clause being translated: which attributes
/// hold `position()` and `last()`, and which attribute holds the context
/// node (for `lang()` and `cn` rebinding).
#[derive(Clone, Debug)]
struct ClauseCtx {
    pos: Option<Attr>,
    last: Option<Attr>,
    node: Attr,
}

impl ClauseCtx {
    /// Top-level context: the execution context provides `cp` = 1 and
    /// `cs` = 1 alongside the context node `cn`.
    fn top() -> ClauseCtx {
        ClauseCtx {
            pos: Some("cp".into()),
            last: Some("cs".into()),
            node: "cn".into(),
        }
    }
}

/// Translate an analyzed, folded expression into the algebra.
pub fn translate(e: &Expr, opts: &TranslateOptions) -> Result<CompiledQuery, CompileError> {
    let mut tr = Translator { opts: *opts, next_id: 0, in_predicate: false };
    match static_type(e) {
        XPathType::NodeSet => {
            let (plan, attr) = tr.t_seq(e)?;
            let deduped = is_deduped_on(&plan, &attr);
            let plan = rename(plan, &attr, "cn");
            let plan = if deduped {
                plan
            } else {
                LogicalOp::dedup(plan, "cn")
            };
            let plan = if opts.prune_properties {
                crate::properties::prune(plan)
            } else {
                plan
            };
            // Intra-query parallelism last: Exchange placement must see
            // the final serial plan shape (threads < 2 is the identity).
            let (plan, _) = crate::properties::parallelize(plan, opts.threads);
            Ok(CompiledQuery::Sequence(plan))
        }
        _ => {
            let scalar = tr.t_scalar(e, &ClauseCtx::top())?;
            let scalar = if opts.prune_properties {
                crate::properties::prune_scalar_expr(scalar)
            } else {
                scalar
            };
            let (scalar, _) = crate::properties::parallelize_scalar(scalar, opts.threads);
            Ok(CompiledQuery::Scalar(scalar))
        }
    }
}

/// True if `plan`'s output is already duplicate-free on `attr` (avoids a
/// redundant top-level Π^D when the path translation ends in one).
fn is_deduped_on(plan: &LogicalOp, attr: &str) -> bool {
    match plan {
        LogicalOp::DedupBy { attr: a, .. } => a == attr,
        LogicalOp::Rename { input, from, to } if to == attr => is_deduped_on(input, from),
        _ => false,
    }
}

fn rename(plan: LogicalOp, from: &str, to: &str) -> LogicalOp {
    if from == to {
        plan
    } else {
        LogicalOp::Rename { input: Box::new(plan), from: from.into(), to: to.into() }
    }
}

struct Translator {
    opts: TranslateOptions,
    next_id: u32,
    /// True while translating predicate clauses (inner paths).
    in_predicate: bool,
}

impl Translator {
    fn fresh(&mut self, prefix: &str) -> Attr {
        self.next_id += 1;
        format!("{prefix}{}", self.next_id)
    }

    // ----- sequence-valued translation -----------------------------------

    /// 𝒯 for node-set-typed expressions: returns the plan and the
    /// attribute holding the result nodes.
    fn t_seq(&mut self, e: &Expr) -> Result<(LogicalOp, Attr), CompileError> {
        match e {
            Expr::Path(p) => self.t_path(p),
            Expr::Union(parts) => self.t_union(parts),
            Expr::Filter(inner, preds) => self.t_filter(inner, preds),
            Expr::FunctionCall(name, args) if name == "id" => self.t_id(&args[0]),
            Expr::VarRef(v) => err(format!(
                "variable ${v} used as a node-set; only atomic-valued variables are supported"
            )),
            other => err(format!("expected a node-set expression, found `{other}`")),
        }
    }

    /// §3.1.3 — unions: rename every part onto a common attribute,
    /// concatenate, eliminate duplicates.
    fn t_union(&mut self, parts: &[Expr]) -> Result<(LogicalOp, Attr), CompileError> {
        let u = self.fresh("u");
        let mut renamed = Vec::with_capacity(parts.len());
        for p in parts {
            let (plan, attr) = self.t_seq(p)?;
            renamed.push(rename(plan, &attr, &u));
        }
        let plan = LogicalOp::dedup(LogicalOp::Concat { parts: renamed }, u.clone());
        Ok((plan, u))
    }

    /// §3.4 — filter expressions `e[p1]…[ph]`, with the document-order
    /// sort when positional predicates are present (§3.4.2).
    fn t_filter(
        &mut self,
        inner: &Expr,
        preds: &[Predicate],
    ) -> Result<(LogicalOp, Attr), CompileError> {
        let (mut plan, attr) = self.t_seq(inner)?;
        let norms: Vec<NormPredicate> =
            preds.iter().map(|p| normalize_predicate(p.expr.clone())).collect();
        if norms.iter().any(|n| n.uses_position) {
            plan = LogicalOp::SortBy { input: Box::new(plan), attr: attr.clone() };
        }
        for np in norms {
            // Filter-expression contexts span the whole input sequence:
            // no grouping attribute.
            plan = self.apply_predicate(plan, None, &attr, np)?;
        }
        Ok((plan, attr))
    }

    /// §3.6.3 — `id()`: tokenize the input into ID strings, dereference
    /// each, drop failed lookups, eliminate duplicates.
    fn t_id(&mut self, arg: &Expr) -> Result<(LogicalOp, Attr), CompileError> {
        let tok = self.fresh("t");
        let tokenized = if static_type(arg) == XPathType::NodeSet {
            let (plan, a) = self.t_seq(arg)?;
            LogicalOp::TokenizeMap {
                input: Box::new(plan),
                attr: tok.clone(),
                expr: ScalarExpr::Convert(ConvKind::ToString, Box::new(ScalarExpr::attr(a))),
            }
        } else {
            let s = self.t_scalar(arg, &ClauseCtx::top())?;
            LogicalOp::TokenizeMap {
                input: Box::new(LogicalOp::Singleton),
                attr: tok.clone(),
                expr: ScalarExpr::Convert(ConvKind::ToString, Box::new(s)),
            }
        };
        let c = self.fresh("c");
        let derefed = LogicalOp::map(
            tokenized,
            c.clone(),
            ScalarExpr::Deref(Box::new(ScalarExpr::attr(tok))),
        );
        let found = LogicalOp::select(
            derefed,
            ScalarExpr::Convert(ConvKind::ToBoolean, Box::new(ScalarExpr::attr(c.clone()))),
        );
        Ok((LogicalOp::dedup(found, c.clone()), c))
    }

    /// §3.1/§4.2 — location paths and general path expressions.
    fn t_path(&mut self, p: &PathExpr) -> Result<(LogicalOp, Attr), CompileError> {
        // Starting context (§3.1.2): c = root(cn) / cn / nodes of e.
        let (mut plan, mut cur) = match &p.start {
            PathStart::Root => {
                let c0 = self.fresh("c");
                (
                    LogicalOp::map(
                        LogicalOp::Singleton,
                        c0.clone(),
                        ScalarExpr::RootOf(Box::new(ScalarExpr::attr("cn"))),
                    ),
                    c0,
                )
            }
            PathStart::ContextNode => {
                let c0 = self.fresh("c");
                (LogicalOp::map(LogicalOp::Singleton, c0.clone(), ScalarExpr::attr("cn")), c0)
            }
            PathStart::Expr(e) => self.t_seq(e)?,
        };
        if p.steps.is_empty() {
            return Ok((plan, cur));
        }

        // §4.2.2: relative inner paths keep the d-join shape (with MemoX);
        // outer paths and absolute inner paths may use the stacked form.
        let stackable = self.opts.stacked_outer
            && (!self.in_predicate || !matches!(p.start, PathStart::ContextNode));

        if stackable {
            let mut undeduped_dups = false;
            for step in &p.steps {
                let grouping = Some(cur.clone());
                let (p2, ci) = self.step_over(plan, &cur, step, grouping)?;
                plan = p2;
                if step.axis.is_ppd() {
                    if self.opts.push_dedup {
                        plan = LogicalOp::dedup(plan, ci.clone());
                    } else {
                        undeduped_dups = true;
                    }
                }
                cur = ci;
            }
            if undeduped_dups {
                plan = LogicalOp::dedup(plan, cur.clone());
            }
            Ok((plan, cur))
        } else if !self.in_predicate {
            // Canonical outer paths: the paper's left-deep d-join chain
            // (Fig. 2): (((χ <Υ>) <Υ>) <Υ>). Left-deep placement is what
            // lets §4.1 push Π^D between steps over the full stream.
            let mut undeduped_dups = false;
            for step in &p.steps {
                let (dep, ci) = self.step_over(LogicalOp::Singleton, &cur, step, None)?;
                plan = LogicalOp::djoin(plan, dep);
                if step.axis.is_ppd() {
                    if self.opts.push_dedup {
                        plan = LogicalOp::dedup(plan, ci.clone());
                    } else {
                        undeduped_dups = true;
                    }
                }
                cur = ci;
            }
            if undeduped_dups {
                plan = LogicalOp::dedup(plan, cur.clone());
            }
            Ok((plan, cur))
        } else {
            // Relative inner paths: right-deep 𝒯[s] <𝔐(𝒯[π1])> (§4.2.2).
            let (steps_plan, result) = self.t_steps_djoin(&cur, &p.steps)?;
            plan = LogicalOp::djoin(plan, steps_plan);
            // The path-level Π^D (always present in 𝒯[π], §3.1.1) — needed
            // even canonically so count()/sum() over inner paths see sets.
            if p.steps.iter().any(|s| s.axis.is_ppd()) && !is_deduped_on(&plan, &result) {
                plan = LogicalOp::dedup(plan, result.clone());
            }
            Ok((plan, result))
        }
    }

    /// Canonical d-join chain over `steps`, with the §4.2.2 memoization:
    /// `𝒯[s/π1] = 𝒯[s] <𝔐(𝒯[π1])>` when the feeding step is ppd.
    ///
    /// The returned plan has `ctx` free.
    fn t_steps_djoin(
        &mut self,
        ctx: &Attr,
        steps: &[Step],
    ) -> Result<(LogicalOp, Attr), CompileError> {
        let (first, c1) = self.step_over(LogicalOp::Singleton, ctx, &steps[0], None)?;
        if steps.len() == 1 {
            return Ok((first, c1));
        }
        let (rest, result) = self.t_steps_djoin(&c1, &steps[1..])?;
        let rest = if steps[0].axis.is_ppd() && self.opts.memoize_inner {
            LogicalOp::MemoX { input: Box::new(rest), key: c1.clone() }
        } else {
            rest
        };
        let mut plan = LogicalOp::djoin(first, rest);
        // §4.2.2: Π^D at every level that can see duplicates. Without the
        // improvement, duplicates survive to the path's final Π^D only.
        if self.opts.push_dedup
            && (steps[0].axis.is_ppd() || steps[1..].iter().any(|s| s.axis.is_ppd()))
        {
            plan = LogicalOp::dedup(plan, result.clone());
        }
        Ok((plan, result))
    }

    /// §3.2/§3.3 — one location step over `input`: Υ then predicates.
    /// `grouping` is the context attribute for positional machinery
    /// (stacked translation, §4.3.1); `None` in dependent d-join branches,
    /// where every evaluation is a fresh pipeline.
    fn step_over(
        &mut self,
        input: LogicalOp,
        ctx: &Attr,
        step: &Step,
        grouping: Option<Attr>,
    ) -> Result<(LogicalOp, Attr), CompileError> {
        if step.axis == Axis::Namespace {
            // Accepted syntactically; the stores materialise no namespace
            // nodes, so the step yields the empty sequence — which an
            // unnest-map over the namespace axis produces naturally.
        }
        let ci = self.fresh("c");
        let mut plan = LogicalOp::UnnestMap {
            input: Box::new(input),
            context: ctx.clone(),
            attr: ci.clone(),
            axis: step.axis,
            test: step.node_test.clone(),
            hint: ScanHint::Auto,
            probe: None,
        };
        for pred in &step.predicates {
            let np = normalize_predicate(pred.expr.clone());
            plan = self.apply_predicate(plan, grouping.clone(), &ci, np)?;
        }
        Ok((plan, ci))
    }

    /// Φ — the predicate filtering functor (§3.3, §4.3).
    ///
    /// Operator order (bottom-up): [Π cn:node] → [χ cp:counter++] →
    /// [Tmp^cs] → σ(cheap clauses) → χ^mat+σ(expensive clauses).
    ///
    /// Note on Tmp^cs placement: the paper's §4.3.2 formula runs the cheap
    /// non-last selections *before* Tmp^cs; that changes what `last()`
    /// observes (the context size must count the whole predicate context,
    /// not the survivors of sibling clauses). We keep Tmp^cs directly
    /// after the counter — see DESIGN.md, erratum E2.
    fn apply_predicate(
        &mut self,
        input: LogicalOp,
        grouping: Option<Attr>,
        node_attr: &Attr,
        np: NormPredicate,
    ) -> Result<LogicalOp, CompileError> {
        let mut plan = input;
        // §3.3.2: rebind cn for nested paths.
        if np.clauses.iter().any(|c| c.has_nested_path) {
            plan = LogicalOp::Rename {
                input: Box::new(plan),
                from: node_attr.clone(),
                to: "cn".into(),
            };
        }
        let mut cctx = ClauseCtx { pos: None, last: None, node: node_attr.clone() };
        if np.uses_position {
            let cp = self.fresh("cp");
            plan = LogicalOp::CounterMap {
                input: Box::new(plan),
                attr: cp.clone(),
                reset_on: grouping.clone(),
            };
            cctx.pos = Some(cp);
        }
        if np.uses_last {
            let cs = self.fresh("cs");
            plan = LogicalOp::TmpCs {
                input: Box::new(plan),
                cs: cs.clone(),
                group: grouping.clone(),
            };
            cctx.last = Some(cs);
        }
        let was_inner = self.in_predicate;
        self.in_predicate = true;
        let result = (|| {
            for clause in &np.clauses {
                let pred = self.t_scalar(&clause.expr, &cctx)?;
                if clause.expensive && self.opts.split_expensive {
                    // §4.3.2: materialise the expensive value per context
                    // node, then select on the memoised attribute.
                    let v = self.fresh("v");
                    plan = LogicalOp::MemoMap {
                        input: Box::new(plan),
                        attr: v.clone(),
                        expr: pred,
                        key: node_attr.clone(),
                    };
                    plan = LogicalOp::select(plan, ScalarExpr::attr(v));
                } else {
                    plan = LogicalOp::select(plan, pred);
                }
            }
            Ok(std::mem::replace(&mut plan, LogicalOp::Singleton))
        })();
        self.in_predicate = was_inner;
        result
    }

    // ----- scalar translation --------------------------------------------

    fn t_scalar(&mut self, e: &Expr, cctx: &ClauseCtx) -> Result<ScalarExpr, CompileError> {
        Ok(match e {
            Expr::Number(n) => ScalarExpr::num(*n),
            Expr::Literal(s) => ScalarExpr::str(s.clone()),
            Expr::VarRef(v) => ScalarExpr::Var(v.clone()),
            Expr::Or(a, b) => {
                ScalarExpr::Or(Box::new(self.t_scalar(a, cctx)?), Box::new(self.t_scalar(b, cctx)?))
            }
            Expr::And(a, b) => ScalarExpr::And(
                Box::new(self.t_scalar(a, cctx)?),
                Box::new(self.t_scalar(b, cctx)?),
            ),
            Expr::Neg(a) => ScalarExpr::Neg(Box::new(self.t_scalar(a, cctx)?)),
            Expr::Arith(op, a, b) => ScalarExpr::Arith(
                *op,
                Box::new(self.t_scalar(a, cctx)?),
                Box::new(self.t_scalar(b, cctx)?),
            ),
            Expr::Compare(op, a, b) => self.t_compare(*op, a, b, cctx)?,
            // A bare node-set in a scalar position is a boolean test.
            Expr::Path(_) | Expr::Union(_) | Expr::Filter(..) => self.agg_exists(e)?,
            Expr::FunctionCall(name, args) => self.t_call(name, args, cctx)?,
        })
    }

    fn agg(&mut self, func: AggFunc, e: &Expr) -> Result<ScalarExpr, CompileError> {
        let (plan, attr) = self.t_seq(e)?;
        let independent = plan.free_attrs().is_empty();
        Ok(ScalarExpr::Agg(AggExpr { func, plan: Box::new(plan), over: attr, independent }))
    }

    fn agg_exists(&mut self, e: &Expr) -> Result<ScalarExpr, CompileError> {
        self.agg(AggFunc::Exists, e)
    }

    fn t_call(
        &mut self,
        name: &str,
        args: &[Expr],
        cctx: &ClauseCtx,
    ) -> Result<ScalarExpr, CompileError> {
        let arg_scalar = |tr: &mut Self, i: usize| tr.t_scalar(&args[i], cctx);
        Ok(match name {
            "position" => match &cctx.pos {
                Some(a) => ScalarExpr::attr(a.clone()),
                None => return err("position() is not available in this context"),
            },
            "last" => match &cctx.last {
                Some(a) => ScalarExpr::attr(a.clone()),
                None => return err("last() is not available in this context"),
            },
            "true" => ScalarExpr::boolean(true),
            "false" => ScalarExpr::boolean(false),
            "not" => ScalarExpr::Not(Box::new(arg_scalar(self, 0)?)),
            "count" => self.agg(AggFunc::Count, &args[0])?,
            "sum" => self.agg(AggFunc::Sum, &args[0])?,
            "exists" => self.agg_exists(&args[0])?,
            "boolean" => {
                if static_type(&args[0]) == XPathType::NodeSet {
                    self.agg_exists(&args[0])?
                } else {
                    ScalarExpr::Convert(ConvKind::ToBoolean, Box::new(arg_scalar(self, 0)?))
                }
            }
            "number" | "string" => {
                let kind = if name == "number" {
                    ConvKind::ToNumber
                } else {
                    ConvKind::ToString
                };
                let inner = if static_type(&args[0]) == XPathType::NodeSet {
                    self.agg(AggFunc::FirstNode, &args[0])?
                } else {
                    arg_scalar(self, 0)?
                };
                ScalarExpr::Convert(kind, Box::new(inner))
            }
            "name" | "local-name" | "namespace-uri" => {
                let func = match name {
                    "name" => NodeFn::Name,
                    "local-name" => NodeFn::LocalName,
                    _ => NodeFn::NamespaceUri,
                };
                let inner = self.agg(AggFunc::FirstNode, &args[0])?;
                ScalarExpr::NodeFn(func, Box::new(inner))
            }
            "concat" => {
                let parts =
                    args.iter().map(|a| self.t_scalar(a, cctx)).collect::<Result<Vec<_>, _>>()?;
                ScalarExpr::StrFn(StrFn::Concat, parts)
            }
            "contains" | "starts-with" | "substring-before" | "substring-after" | "substring"
            | "string-length" | "normalize-space" | "translate" => {
                let func = match name {
                    "contains" => StrFn::Contains,
                    "starts-with" => StrFn::StartsWith,
                    "substring-before" => StrFn::SubstringBefore,
                    "substring-after" => StrFn::SubstringAfter,
                    "substring" => StrFn::Substring,
                    "string-length" => StrFn::StringLength,
                    "normalize-space" => StrFn::NormalizeSpace,
                    _ => StrFn::Translate,
                };
                let parts =
                    args.iter().map(|a| self.t_scalar(a, cctx)).collect::<Result<Vec<_>, _>>()?;
                ScalarExpr::StrFn(func, parts)
            }
            "floor" | "ceiling" | "round" => {
                let func = match name {
                    "floor" => NumFn::Floor,
                    "ceiling" => NumFn::Ceiling,
                    _ => NumFn::Round,
                };
                ScalarExpr::NumFn(func, Box::new(arg_scalar(self, 0)?))
            }
            "lang" => ScalarExpr::Lang(Box::new(arg_scalar(self, 0)?), cctx.node.clone()),
            // id() in a scalar position is a node-set: exists-convert.
            "id" => self.agg_exists(&Expr::FunctionCall("id".into(), args.to_vec()))?,
            other => return err(format!("no translation for function `{other}()`")),
        })
    }

    /// §3.6.2 — comparison translation, including the existential
    /// node-set semantics.
    fn t_compare(
        &mut self,
        op: CompOp,
        a: &Expr,
        b: &Expr,
        cctx: &ClauseCtx,
    ) -> Result<ScalarExpr, CompileError> {
        use XPathType::*;
        let (ta, tb) = (static_type(a), static_type(b));
        match (ta == NodeSet, tb == NodeSet) {
            (true, true) => self.t_compare_two_sets(op, a, b),
            (true, false) => self.t_compare_set_prim(op, a, b, false, cctx),
            (false, true) => self.t_compare_set_prim(op.flip(), b, a, true, cctx),
            (false, false) => {
                let mode = match (ta, tb) {
                    (Boolean, _) | (_, Boolean) => CmpMode::Bool,
                    (Number, _) | (_, Number) => CmpMode::Num,
                    (String, String) => CmpMode::Str,
                    _ => CmpMode::Dyn,
                };
                Ok(ScalarExpr::Compare {
                    op,
                    mode,
                    lhs: Box::new(self.t_scalar(a, cctx)?),
                    rhs: Box::new(self.t_scalar(b, cctx)?),
                })
            }
        }
    }

    fn t_compare_two_sets(
        &mut self,
        op: CompOp,
        a: &Expr,
        b: &Expr,
    ) -> Result<ScalarExpr, CompileError> {
        let (pl1, a1) = self.t_seq(a)?;
        match op {
            CompOp::Eq | CompOp::Ne => {
                // 𝒯[e1 = e2] = 𝔄_exists(𝒯[e1] ⋉ 𝒯[e2]); for ≠ the
                // existential semantics still needs a *semi*-join, with the
                // inequality as the join predicate (DESIGN.md erratum E1).
                let (pl2, a2) = self.t_seq(b)?;
                let pred = ScalarExpr::Compare {
                    op,
                    mode: CmpMode::Str,
                    lhs: Box::new(ScalarExpr::Convert(
                        ConvKind::ToString,
                        Box::new(ScalarExpr::attr(a1.clone())),
                    )),
                    rhs: Box::new(ScalarExpr::Convert(
                        ConvKind::ToString,
                        Box::new(ScalarExpr::attr(a2)),
                    )),
                };
                let join = LogicalOp::SemiJoin { left: Box::new(pl1), right: Box::new(pl2), pred };
                Ok(ScalarExpr::Agg(AggExpr {
                    func: AggFunc::Exists,
                    independent: join.free_attrs().is_empty(),
                    plan: Box::new(join),
                    over: a1,
                }))
            }
            // 𝒯[e1 θ e2] for θ∈{<,≤}: σ against max(e2); for {>,≥}: min.
            CompOp::Lt | CompOp::Le | CompOp::Gt | CompOp::Ge => {
                let agg_fn = if matches!(op, CompOp::Lt | CompOp::Le) {
                    AggFunc::Max
                } else {
                    AggFunc::Min
                };
                let bound = self.agg(agg_fn, b)?;
                let pred = ScalarExpr::Compare {
                    op,
                    mode: CmpMode::Num,
                    lhs: Box::new(ScalarExpr::Convert(
                        ConvKind::ToNumber,
                        Box::new(ScalarExpr::attr(a1.clone())),
                    )),
                    rhs: Box::new(bound),
                };
                let filtered = LogicalOp::select(pl1, pred);
                Ok(ScalarExpr::Agg(AggExpr {
                    func: AggFunc::Exists,
                    independent: filtered.free_attrs().is_empty(),
                    plan: Box::new(filtered),
                    over: a1,
                }))
            }
        }
    }

    /// Node-set θ primitive: σ over the set with the primitive as the
    /// other operand (existential); booleans compare against exists().
    fn t_compare_set_prim(
        &mut self,
        op: CompOp,
        set: &Expr,
        prim: &Expr,
        flipped: bool,
        cctx: &ClauseCtx,
    ) -> Result<ScalarExpr, CompileError> {
        use XPathType::*;
        let tp = static_type(prim);
        // boolean(set) op bool — a plain scalar comparison.
        if tp == Boolean && matches!(op, CompOp::Eq | CompOp::Ne) {
            let lhs = self.agg_exists(set)?;
            let rhs = self.t_scalar(prim, cctx)?;
            let (lhs, rhs) = if flipped { (rhs, lhs) } else { (lhs, rhs) };
            return Ok(ScalarExpr::Compare {
                op,
                mode: CmpMode::Bool,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        let (plan, attr) = self.t_seq(set)?;
        let prim_scalar = self.t_scalar(prim, cctx)?;
        let (mode, node_side): (CmpMode, ScalarExpr) = match (op, tp) {
            (CompOp::Eq | CompOp::Ne, String) => (
                CmpMode::Str,
                ScalarExpr::Convert(ConvKind::ToString, Box::new(ScalarExpr::attr(attr.clone()))),
            ),
            (CompOp::Eq | CompOp::Ne, Number) | (_, Number) | (_, String) => (
                CmpMode::Num,
                ScalarExpr::Convert(ConvKind::ToNumber, Box::new(ScalarExpr::attr(attr.clone()))),
            ),
            _ => (
                CmpMode::Dyn,
                ScalarExpr::Convert(ConvKind::ToString, Box::new(ScalarExpr::attr(attr.clone()))),
            ),
        };
        let pred = ScalarExpr::Compare {
            op,
            mode,
            lhs: Box::new(node_side),
            rhs: Box::new(prim_scalar),
        };
        let filtered = LogicalOp::select(plan, pred);
        Ok(ScalarExpr::Agg(AggExpr {
            func: AggFunc::Exists,
            independent: filtered.free_attrs().is_empty(),
            plan: Box::new(filtered),
            over: attr,
        }))
    }
}
