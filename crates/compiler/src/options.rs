//! Translation switches and execution resource limits. The canonical
//! translation (paper §3) and the improved translation (paper §4) are
//! points in the translation option space; the individual flags exist so
//! the ablation benchmarks can isolate each improvement.
//! [`ResourceLimits`] is the per-query execution budget plumbed from the
//! user surfaces (CLI `--max-mem`/`--timeout`, REPL `:limits`, bench
//! harnesses) down to the `nqe` resource governor (DESIGN.md §11).

use std::time::Duration;

/// Whether the post-translation cost-based optimizer pass runs.
///
/// `Off` (the default and every paper preset) compiles exactly the plan
/// the translation flags dictate — byte-identical to the engine before
/// the optimizer existed. `CostBased` re-examines the translation's
/// unconditional choices (MemoX, χ^mat split, stacked vs. d-join outer
/// paths, range-scan vs. cursor axis kernels) against cardinality
/// estimates seeded from the store's [`StructuralIndex`] statistics and
/// keeps each one only where the estimates say it pays. Without store
/// statistics (no index, or compile without a store) `CostBased`
/// degrades to `Off`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CostMode {
    /// No optimizer pass: translation flags decide everything.
    #[default]
    Off,
    /// Choose translation alternatives per plan site from store
    /// statistics.
    CostBased,
}

/// Options controlling the translation into the algebra.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TranslateOptions {
    /// §4.2.1 — stacked translation of outer paths: steps consume the
    /// previous step's output directly instead of going through d-joins.
    pub stacked_outer: bool,
    /// §4.1 — duplicate elimination pushed after every ppd step instead of
    /// only once at the top.
    pub push_dedup: bool,
    /// §4.2.2 — memoize inner (predicate) relative paths with MemoX.
    pub memoize_inner: bool,
    /// §4.3.2 — split predicate clauses into cheap/expensive, evaluate
    /// cheap first and memoize expensive clause values (χ^mat).
    pub split_expensive: bool,
    /// Beyond the paper: prune Π^D/Sort operators proven redundant by the
    /// order/duplicate property analysis of Hidders & Michiels (the
    /// refinement §4.1 cites as ref. [13] but skips).
    pub prune_properties: bool,
    /// DESIGN.md §14 — intra-query parallelism degree. When > 1 the
    /// parallelize pass inserts Exchange operators above parallel-safe
    /// expensive spine segments; 1 (the default and every preset)
    /// compiles the exact serial plan, with no Exchange anywhere.
    pub threads: usize,
    /// Cost-based optimizer pass over the translated plan; `Off` in
    /// every preset so the paper translations stay byte-exact.
    pub optimize: CostMode,
}

impl TranslateOptions {
    /// The canonical translation of paper §3: d-joins everywhere, one
    /// final duplicate elimination, no memoization.
    pub fn canonical() -> TranslateOptions {
        TranslateOptions {
            stacked_outer: false,
            push_dedup: false,
            memoize_inner: false,
            split_expensive: false,
            prune_properties: false,
            threads: 1,
            optimize: CostMode::Off,
        }
    }

    /// The improved translation of paper §4 (the default).
    pub fn improved() -> TranslateOptions {
        TranslateOptions {
            stacked_outer: true,
            push_dedup: true,
            memoize_inner: true,
            split_expensive: true,
            prune_properties: false,
            threads: 1,
            optimize: CostMode::Off,
        }
    }

    /// The improved translation plus the [13]-style property pruning
    /// (an extension beyond the paper; see DESIGN.md).
    pub fn extended() -> TranslateOptions {
        TranslateOptions { prune_properties: true, ..TranslateOptions::improved() }
    }

    /// The improved translation with the cost-based optimizer enabled:
    /// §4's rewrites become per-site decisions instead of defaults.
    pub fn cost_based() -> TranslateOptions {
        TranslateOptions {
            optimize: CostMode::CostBased,
            ..TranslateOptions::improved()
        }
    }

    /// Builder: cost-based optimizer mode.
    pub fn with_optimize(mut self, mode: CostMode) -> TranslateOptions {
        self.optimize = mode;
        self
    }

    /// Builder: intra-query parallelism degree (0 is normalised to the
    /// machine's available parallelism by the execution surfaces; here 0
    /// just means "pick later" and compiles serially).
    pub fn with_threads(mut self, threads: usize) -> TranslateOptions {
        self.threads = threads;
        self
    }
}

impl Default for TranslateOptions {
    fn default() -> Self {
        TranslateOptions::improved()
    }
}

/// Per-query execution budget: every materializing physical operator
/// charges the memory and tuple budgets, and the wall clock is checked
/// against the timeout at every governor tick. `Default` is unlimited.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ResourceLimits {
    /// Cap on the bytes held by materializing operators (Sort, Tmp^cs,
    /// MemoX, χ^mat, ⋉/▷ inner materialisation, Π^D seen-sets, result
    /// accumulation); `None` is unlimited.
    pub max_memory_bytes: Option<u64>,
    /// Cap on the total tuples materialized across all operators.
    pub max_tuples: Option<u64>,
    /// Wall-clock budget from the start of execution.
    pub timeout: Option<Duration>,
    /// Cooperative check cadence: deadline and cancellation are examined
    /// every this-many governor ticks (`None` → the governor default).
    pub tick_interval: Option<u32>,
    /// Cap on XML element nesting depth at parse time (`None` → the
    /// parser's conservative default). Part of the same budget surface:
    /// hostile input must fail typed at parse, not overflow the stack in
    /// a later recursive consumer (DESIGN.md §13).
    pub max_parse_depth: Option<usize>,
    /// Cap on element/attribute/PI name length at parse time.
    pub max_name_len: Option<usize>,
    /// Cap on attributes per element at parse time.
    pub max_attr_count: Option<usize>,
    /// Cap on entity/character references per document at parse time.
    pub max_entity_expansions: Option<u64>,
}

impl ResourceLimits {
    /// No limits (the default).
    pub fn unlimited() -> ResourceLimits {
        ResourceLimits::default()
    }

    /// True when no budget is configured (cancellation may still be
    /// requested through the governor's token).
    pub fn is_unlimited(&self) -> bool {
        self.max_memory_bytes.is_none() && self.max_tuples.is_none() && self.timeout.is_none()
    }

    /// Builder: memory cap in bytes.
    pub fn with_max_memory(mut self, bytes: u64) -> ResourceLimits {
        self.max_memory_bytes = Some(bytes);
        self
    }

    /// Builder: materialized-tuple cap.
    pub fn with_max_tuples(mut self, tuples: u64) -> ResourceLimits {
        self.max_tuples = Some(tuples);
        self
    }

    /// Builder: wall-clock budget.
    pub fn with_timeout(mut self, timeout: Duration) -> ResourceLimits {
        self.timeout = Some(timeout);
        self
    }

    /// Builder: tick interval.
    pub fn with_tick_interval(mut self, every: u32) -> ResourceLimits {
        self.tick_interval = Some(every);
        self
    }

    /// Builder: parse-time element nesting depth cap.
    pub fn with_max_parse_depth(mut self, depth: usize) -> ResourceLimits {
        self.max_parse_depth = Some(depth);
        self
    }

    /// Builder: parse-time name length cap (bytes).
    pub fn with_max_name_len(mut self, len: usize) -> ResourceLimits {
        self.max_name_len = Some(len);
        self
    }

    /// Builder: parse-time attributes-per-element cap.
    pub fn with_max_attr_count(mut self, count: usize) -> ResourceLimits {
        self.max_attr_count = Some(count);
        self
    }

    /// Builder: parse-time entity-reference cap.
    pub fn with_max_entity_expansions(mut self, count: u64) -> ResourceLimits {
        self.max_entity_expansions = Some(count);
        self
    }
}

/// Parse a human memory size: plain bytes (`4096`), decimal suffixes
/// (`64k`, `16m`, `2g`) or binary ones (`64KiB`, `16MiB`, `2GiB`), all
/// case-insensitive, with an optional `B`.
pub fn parse_mem_size(s: &str) -> Result<u64, String> {
    let t = s.trim();
    let lower = t.to_ascii_lowercase();
    let (digits, factor) = if let Some(d) = lower.strip_suffix("kib") {
        (d, 1u64 << 10)
    } else if let Some(d) = lower.strip_suffix("mib") {
        (d, 1u64 << 20)
    } else if let Some(d) = lower.strip_suffix("gib") {
        (d, 1u64 << 30)
    } else if let Some(d) = lower.strip_suffix("kb") {
        (d, 1_000)
    } else if let Some(d) = lower.strip_suffix("mb") {
        (d, 1_000_000)
    } else if let Some(d) = lower.strip_suffix("gb") {
        (d, 1_000_000_000)
    } else if let Some(d) = lower.strip_suffix('k') {
        (d, 1u64 << 10)
    } else if let Some(d) = lower.strip_suffix('m') {
        (d, 1u64 << 20)
    } else if let Some(d) = lower.strip_suffix('g') {
        (d, 1u64 << 30)
    } else if let Some(d) = lower.strip_suffix('b') {
        (d, 1)
    } else {
        (lower.as_str(), 1)
    };
    let n: u64 = digits.trim().parse().map_err(|_| format!("bad memory size `{s}`"))?;
    n.checked_mul(factor).ok_or_else(|| format!("memory size `{s}` overflows"))
}

/// Parse a human duration: `250ms`, `5s`, `2m`, `1h`, or a plain number
/// of seconds.
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let t = s.trim().to_ascii_lowercase();
    let (digits, mul_ms) = if let Some(d) = t.strip_suffix("ms") {
        (d.to_owned(), 1u64)
    } else if let Some(d) = t.strip_suffix('s') {
        (d.to_owned(), 1_000)
    } else if let Some(d) = t.strip_suffix('m') {
        (d.to_owned(), 60_000)
    } else if let Some(d) = t.strip_suffix('h') {
        (d.to_owned(), 3_600_000)
    } else {
        (t.clone(), 1_000)
    };
    // Allow fractional counts (`0.5s`).
    let n: f64 = digits.trim().parse().map_err(|_| format!("bad duration `{s}`"))?;
    if n.is_nan() || n < 0.0 || !n.is_finite() {
        return Err(format!("bad duration `{s}`"));
    }
    Ok(Duration::from_millis((n * mul_ms as f64).round() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_size_parsing() {
        assert_eq!(parse_mem_size("4096"), Ok(4096));
        assert_eq!(parse_mem_size("16MiB"), Ok(16 << 20));
        assert_eq!(parse_mem_size("16mib"), Ok(16 << 20));
        assert_eq!(parse_mem_size("2g"), Ok(2 << 30));
        assert_eq!(parse_mem_size("64k"), Ok(64 << 10));
        assert_eq!(parse_mem_size("1kb"), Ok(1000));
        assert_eq!(parse_mem_size(" 8 MiB "), Ok(8 << 20));
        assert!(parse_mem_size("lots").is_err());
        assert!(parse_mem_size("-1").is_err());
    }

    #[test]
    fn duration_parsing() {
        assert_eq!(parse_duration("250ms"), Ok(Duration::from_millis(250)));
        assert_eq!(parse_duration("5s"), Ok(Duration::from_secs(5)));
        assert_eq!(parse_duration("5"), Ok(Duration::from_secs(5)));
        assert_eq!(parse_duration("0.5s"), Ok(Duration::from_millis(500)));
        assert_eq!(parse_duration("2m"), Ok(Duration::from_secs(120)));
        assert!(parse_duration("soon").is_err());
        assert!(parse_duration("-3s").is_err());
    }

    #[test]
    fn limits_builders() {
        let l = ResourceLimits::unlimited();
        assert!(l.is_unlimited());
        let l = l
            .with_max_memory(16 << 20)
            .with_max_tuples(1_000)
            .with_timeout(Duration::from_secs(5))
            .with_tick_interval(32);
        assert!(!l.is_unlimited());
        assert_eq!(l.max_memory_bytes, Some(16 << 20));
        assert_eq!(l.max_tuples, Some(1_000));
        assert_eq!(l.timeout, Some(Duration::from_secs(5)));
        assert_eq!(l.tick_interval, Some(32));
    }

    #[test]
    fn presets() {
        let c = TranslateOptions::canonical();
        assert!(!c.stacked_outer && !c.push_dedup && !c.memoize_inner && !c.split_expensive);
        let i = TranslateOptions::improved();
        assert!(i.stacked_outer && i.push_dedup && i.memoize_inner && i.split_expensive);
        assert!(!i.prune_properties, "pruning is a beyond-paper extension");
        assert_eq!(TranslateOptions::default(), i);
        assert!(TranslateOptions::extended().prune_properties);
        assert_eq!(c.threads, 1, "every preset compiles serially");
        assert_eq!(i.threads, 1);
        assert_eq!(TranslateOptions::extended().with_threads(4).threads, 4);
        assert_eq!(c.optimize, CostMode::Off, "paper presets never optimize");
        assert_eq!(i.optimize, CostMode::Off);
        assert_eq!(TranslateOptions::extended().optimize, CostMode::Off);
        let cb = TranslateOptions::cost_based();
        assert_eq!(cb.optimize, CostMode::CostBased);
        assert_eq!(TranslateOptions { optimize: CostMode::Off, ..cb }, i);
        assert_eq!(i.with_optimize(CostMode::CostBased), cb);
    }
}
