//! Translation switches. The canonical translation (paper §3) and the
//! improved translation (paper §4) are points in this option space; the
//! individual flags exist so the ablation benchmarks can isolate each
//! improvement.

/// Options controlling the translation into the algebra.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TranslateOptions {
    /// §4.2.1 — stacked translation of outer paths: steps consume the
    /// previous step's output directly instead of going through d-joins.
    pub stacked_outer: bool,
    /// §4.1 — duplicate elimination pushed after every ppd step instead of
    /// only once at the top.
    pub push_dedup: bool,
    /// §4.2.2 — memoize inner (predicate) relative paths with MemoX.
    pub memoize_inner: bool,
    /// §4.3.2 — split predicate clauses into cheap/expensive, evaluate
    /// cheap first and memoize expensive clause values (χ^mat).
    pub split_expensive: bool,
    /// Beyond the paper: prune Π^D/Sort operators proven redundant by the
    /// order/duplicate property analysis of Hidders & Michiels (the
    /// refinement §4.1 cites as ref. [13] but skips).
    pub prune_properties: bool,
}

impl TranslateOptions {
    /// The canonical translation of paper §3: d-joins everywhere, one
    /// final duplicate elimination, no memoization.
    pub fn canonical() -> TranslateOptions {
        TranslateOptions {
            stacked_outer: false,
            push_dedup: false,
            memoize_inner: false,
            split_expensive: false,
            prune_properties: false,
        }
    }

    /// The improved translation of paper §4 (the default).
    pub fn improved() -> TranslateOptions {
        TranslateOptions {
            stacked_outer: true,
            push_dedup: true,
            memoize_inner: true,
            split_expensive: true,
            prune_properties: false,
        }
    }

    /// The improved translation plus the [13]-style property pruning
    /// (an extension beyond the paper; see DESIGN.md).
    pub fn extended() -> TranslateOptions {
        TranslateOptions { prune_properties: true, ..TranslateOptions::improved() }
    }
}

impl Default for TranslateOptions {
    fn default() -> Self {
        TranslateOptions::improved()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let c = TranslateOptions::canonical();
        assert!(!c.stacked_outer && !c.push_dedup && !c.memoize_inner && !c.split_expensive);
        let i = TranslateOptions::improved();
        assert!(i.stacked_outer && i.push_dedup && i.memoize_inner && i.split_expensive);
        assert!(!i.prune_properties, "pruning is a beyond-paper extension");
        assert_eq!(TranslateOptions::default(), i);
        assert!(TranslateOptions::extended().prune_properties);
    }
}
