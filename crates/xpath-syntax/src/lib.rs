//! XPath 1.0 front-end: lexer, parser, AST, semantic analysis,
//! normalization and constant folding.
//!
//! These are phases 1–4 of the paper's six-phase compiler (§5.1):
//! parsing → normalization → semantic analysis → rewrite. The output of
//! [`frontend`] is a conversion-explicit, constant-folded AST ready for
//! translation into the algebra (the `compiler` crate).

pub mod ast;
pub mod fold;
pub mod functions;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod semantic;
pub mod xvalue;

pub use ast::{ArithOp, CompOp, Expr, KindTest, NodeTest, PathExpr, PathStart, Predicate, Step};
pub use functions::XPathType;
pub use normalize::{normalize_predicate, Clause, NormPredicate};
pub use parser::{parse, ParseError};
pub use semantic::{analyze, static_type, SemanticError};

/// Front-end error: parse or semantic.
#[derive(Clone, Debug, PartialEq)]
pub enum FrontendError {
    /// Lexical/syntactic error.
    Parse(ParseError),
    /// Typing/arity error.
    Semantic(SemanticError),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Parse(e) => write!(f, "{e}"),
            FrontendError::Semantic(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}

impl From<SemanticError> for FrontendError {
    fn from(e: SemanticError) -> Self {
        FrontendError::Semantic(e)
    }
}

/// Run the complete front-end: parse, analyze, fold.
pub fn frontend(query: &str) -> Result<Expr, FrontendError> {
    let ast = parse(query)?;
    let typed = analyze(ast)?;
    Ok(fold::fold(typed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontend_pipeline() {
        let e = frontend("/a/b[1 + 1]").unwrap();
        assert_eq!(e.to_string(), "/child::a/child::b[(position() = 2)]");
    }

    #[test]
    fn frontend_errors_propagate() {
        assert!(matches!(frontend("///"), Err(FrontendError::Parse(_))));
        assert!(matches!(frontend("bogus()"), Err(FrontendError::Semantic(_))));
    }
}
