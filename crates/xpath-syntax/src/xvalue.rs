//! Scalar value semantics of XPath 1.0 (conversions and string/number
//! functions), shared by constant folding, the NVM and the baseline
//! interpreter so all evaluators agree bit-for-bit.

/// Convert a string to a number per XPath `number()`: optional whitespace,
/// optional minus, digits with optional fraction; anything else is NaN.
pub fn string_to_number(s: &str) -> f64 {
    let t = s.trim_matches([' ', '\t', '\r', '\n']);
    if t.is_empty() {
        return f64::NAN;
    }
    let (neg, rest) = match t.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, t),
    };
    // Grammar: Digits ('.' Digits?)? | '.' Digits
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let int_digits = i;
    let mut frac_digits = 0;
    if i < bytes.len() && bytes[i] == b'.' {
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            frac_digits += 1;
            i += 1;
        }
    }
    if i != bytes.len() || (int_digits == 0 && frac_digits == 0) {
        return f64::NAN;
    }
    match rest.parse::<f64>() {
        Ok(v) => {
            if neg {
                -v
            } else {
                v
            }
        }
        Err(_) => f64::NAN,
    }
}

/// Convert a number to a string per XPath `string()`: integers without a
/// decimal point, NaN/Infinity spelled out, no exponent notation for the
/// magnitudes XPath cares about.
pub fn number_to_string(n: f64) -> String {
    if n.is_nan() {
        return "NaN".to_owned();
    }
    if n.is_infinite() {
        return if n > 0.0 {
            "Infinity".into()
        } else {
            "-Infinity".into()
        };
    }
    if n == 0.0 {
        return "0".to_owned();
    }
    if n == n.trunc() && n.abs() < 1e18 {
        return format!("{}", n as i64);
    }
    // Shortest representation that round-trips; Rust's Display for f64
    // already produces that, without exponent for moderate magnitudes.
    let s = format!("{n}");
    if s.contains('e') || s.contains('E') {
        // Fall back to a plain decimal expansion.
        format!("{n:.10}").trim_end_matches('0').trim_end_matches('.').to_owned()
    } else {
        s
    }
}

/// `boolean()` of a number: false for 0 and NaN.
pub fn number_to_boolean(n: f64) -> bool {
    n != 0.0 && !n.is_nan()
}

/// `boolean()` of a string: false iff empty.
pub fn string_to_boolean(s: &str) -> bool {
    !s.is_empty()
}

/// `round()` per XPath: half rounds towards +∞ (unlike Rust's
/// `f64::round`, which rounds half away from zero).
pub fn xpath_round(n: f64) -> f64 {
    if n.is_nan() || n.is_infinite() {
        return n;
    }
    let f = n.floor();
    if n - f >= 0.5 {
        f + 1.0
    } else {
        // Preserves -0.0 semantics for -0.5 < n <= -0.0.
        f + (n - f).round()
    }
}

/// `substring(s, start, len?)` per XPath: 1-based, positions are rounded,
/// NaN handling per spec (character-based, not byte-based).
pub fn xpath_substring(s: &str, start: f64, length: Option<f64>) -> String {
    let chars: Vec<char> = s.chars().collect();
    let start_r = xpath_round(start);
    if start_r.is_nan() {
        return String::new();
    }
    let end_r = match length {
        None => f64::INFINITY,
        Some(l) => {
            let l = xpath_round(l);
            if l.is_nan() {
                return String::new();
            }
            start_r + l
        }
    };
    // Select characters at 1-based positions p with start <= p < end.
    let lo = if start_r.is_infinite() {
        if start_r > 0.0 {
            return String::new();
        }
        0
    } else {
        (start_r as i64 - 1).max(0) as usize
    };
    let hi = if end_r.is_infinite() {
        if end_r > 0.0 {
            chars.len()
        } else {
            return String::new();
        }
    } else {
        ((end_r as i64 - 1).max(0) as usize).min(chars.len())
    };
    if lo >= hi {
        return String::new();
    }
    chars[lo..hi].iter().collect()
}

/// `normalize-space()` per XPath: strip leading/trailing whitespace,
/// collapse internal runs to single spaces.
pub fn normalize_space(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_ws = true;
    for c in s.chars() {
        if matches!(c, ' ' | '\t' | '\r' | '\n') {
            if !in_ws {
                out.push(' ');
                in_ws = true;
            }
        } else {
            out.push(c);
            in_ws = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// `translate(s, from, to)` per XPath: map characters of `from` to the
/// corresponding characters of `to`; characters of `from` beyond `to`'s
/// length are removed; the first occurrence in `from` wins.
pub fn translate(s: &str, from: &str, to: &str) -> String {
    let from_chars: Vec<char> = from.chars().collect();
    let to_chars: Vec<char> = to.chars().collect();
    let mut out = String::with_capacity(s.len());
    'outer: for c in s.chars() {
        for (i, &f) in from_chars.iter().enumerate() {
            if f == c {
                if let Some(&t) = to_chars.get(i) {
                    out.push(t);
                }
                continue 'outer;
            }
        }
        out.push(c);
    }
    out
}

/// `substring-before(a, b)`.
pub fn substring_before(a: &str, b: &str) -> String {
    match a.find(b) {
        Some(i) if !b.is_empty() => a[..i].to_owned(),
        _ => String::new(),
    }
}

/// `substring-after(a, b)`.
pub fn substring_after(a: &str, b: &str) -> String {
    if b.is_empty() {
        return String::new();
    }
    match a.find(b) {
        Some(i) => a[i + b.len()..].to_owned(),
        None => String::new(),
    }
}

/// `string-length()` counts characters, not bytes.
pub fn string_length(s: &str) -> f64 {
    s.chars().count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_parsing() {
        assert_eq!(string_to_number("12"), 12.0);
        assert_eq!(string_to_number("  -3.5 "), -3.5);
        assert_eq!(string_to_number(".5"), 0.5);
        assert_eq!(string_to_number("5."), 5.0);
        assert!(string_to_number("").is_nan());
        assert!(string_to_number("12x").is_nan());
        assert!(string_to_number("1e3").is_nan(), "no exponents in XPath 1.0");
        assert!(string_to_number("--3").is_nan());
        assert!(string_to_number("+3").is_nan(), "no leading + in XPath 1.0");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number_to_string(0.0), "0");
        assert_eq!(number_to_string(-0.0), "0");
        assert_eq!(number_to_string(42.0), "42");
        assert_eq!(number_to_string(-17.0), "-17");
        assert_eq!(number_to_string(3.5), "3.5");
        assert_eq!(number_to_string(f64::NAN), "NaN");
        assert_eq!(number_to_string(f64::INFINITY), "Infinity");
        assert_eq!(number_to_string(f64::NEG_INFINITY), "-Infinity");
    }

    #[test]
    fn boolean_conversions() {
        assert!(!number_to_boolean(0.0));
        assert!(!number_to_boolean(-0.0));
        assert!(!number_to_boolean(f64::NAN));
        assert!(number_to_boolean(0.1));
        assert!(number_to_boolean(f64::INFINITY));
        assert!(string_to_boolean("x"));
        assert!(!string_to_boolean(""));
    }

    #[test]
    fn round_half_toward_positive_infinity() {
        assert_eq!(xpath_round(2.5), 3.0);
        assert_eq!(xpath_round(-2.5), -2.0);
        assert_eq!(xpath_round(2.4), 2.0);
        assert_eq!(xpath_round(-2.6), -3.0);
        assert!(xpath_round(f64::NAN).is_nan());
    }

    #[test]
    fn substring_spec_examples() {
        // Examples straight from the XPath 1.0 recommendation §4.2.
        assert_eq!(xpath_substring("12345", 2.0, Some(3.0)), "234");
        assert_eq!(xpath_substring("12345", 2.0, None), "2345");
        assert_eq!(xpath_substring("12345", 1.5, Some(2.6)), "234");
        assert_eq!(xpath_substring("12345", 0.0, Some(3.0)), "12");
        assert_eq!(xpath_substring("12345", f64::NAN, Some(3.0)), "");
        assert_eq!(xpath_substring("12345", 1.0, Some(f64::NAN)), "");
        assert_eq!(xpath_substring("12345", -42.0, Some(f64::INFINITY)), "12345");
        assert_eq!(xpath_substring("12345", f64::NEG_INFINITY, Some(f64::INFINITY)), "");
    }

    #[test]
    fn normalize_space_examples() {
        assert_eq!(normalize_space("  a  b \t c \n"), "a b c");
        assert_eq!(normalize_space(""), "");
        assert_eq!(normalize_space("   "), "");
        assert_eq!(normalize_space("x"), "x");
    }

    #[test]
    fn translate_examples() {
        assert_eq!(translate("bar", "abc", "ABC"), "BAr");
        assert_eq!(translate("--aaa--", "abc-", "ABC"), "AAA");
        assert_eq!(translate("abca", "aa", "xy"), "xbcx", "first match wins");
    }

    #[test]
    fn substring_before_after() {
        assert_eq!(substring_before("1999/04/01", "/"), "1999");
        assert_eq!(substring_after("1999/04/01", "/"), "04/01");
        assert_eq!(substring_after("1999/04/01", "19"), "99/04/01");
        assert_eq!(substring_before("abc", "x"), "");
        assert_eq!(substring_after("abc", "x"), "");
        assert_eq!(substring_before("abc", ""), "");
        assert_eq!(substring_after("abc", ""), "");
    }

    #[test]
    fn string_length_chars() {
        assert_eq!(string_length(""), 0.0);
        assert_eq!(string_length("abc"), 3.0);
        assert_eq!(string_length("äöü"), 3.0);
    }
}
