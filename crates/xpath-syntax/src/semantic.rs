//! Semantic analysis (compiler phase 3, paper §5.1).
//!
//! * checks function names and arities against the core library,
//! * derives the static type of every sub-expression (XPath 1.0 is
//!   statically typed apart from variables),
//! * makes every implicit conversion explicit as a function call
//!   (`boolean(…)`, `number(…)`, `string(…)`), so later phases never
//!   convert implicitly — exactly the paper's "all implicit conversions
//!   have also been added as function calls",
//! * rewrites numeric predicates `[e]` into `[position() = e]`,
//! * supplies the implicit context-node argument of `string()`, `name()`
//!   etc.

use xmlstore::Axis;

use crate::ast::{CompOp, Expr, KindTest, NodeTest, PathExpr, PathStart, Predicate, Step};
use crate::functions::{lookup, param_type, XPathType};

/// Semantic error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SemanticError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for SemanticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "semantic error: {}", self.message)
    }
}

impl std::error::Error for SemanticError {}

fn err<T>(message: impl Into<String>) -> Result<T, SemanticError> {
    Err(SemanticError { message: message.into() })
}

/// Static type of an (analyzed or raw) expression. Variables are `Any`.
pub fn static_type(e: &Expr) -> XPathType {
    match e {
        Expr::Or(..) | Expr::And(..) | Expr::Compare(..) => XPathType::Boolean,
        Expr::Arith(..) | Expr::Neg(..) | Expr::Number(_) => XPathType::Number,
        Expr::Union(..) | Expr::Path(..) => XPathType::NodeSet,
        Expr::Filter(inner, _) => static_type(inner),
        Expr::Literal(_) => XPathType::String,
        Expr::VarRef(_) => XPathType::Any,
        Expr::FunctionCall(name, _) => lookup(name).map(|s| s.result).unwrap_or(XPathType::Any),
    }
}

fn call(name: &str, args: Vec<Expr>) -> Expr {
    Expr::FunctionCall(name.to_owned(), args)
}

fn context_node_path() -> Expr {
    Expr::Path(PathExpr {
        start: PathStart::ContextNode,
        steps: vec![Step::new(Axis::SelfAxis, NodeTest::Kind(KindTest::Node))],
    })
}

/// Wrap `e` so its type becomes `want` (no-op if it already is, or if
/// either side is `Any`).
fn convert(e: Expr, want: XPathType) -> Expr {
    let have = static_type(&e);
    if have == want || want == XPathType::Any {
        return e;
    }
    match want {
        XPathType::Boolean => call("boolean", vec![e]),
        XPathType::Number => call("number", vec![e]),
        XPathType::String => call("string", vec![e]),
        XPathType::NodeSet | XPathType::Any => e,
    }
}

/// Run semantic analysis, producing the conversion-explicit tree.
pub fn analyze(e: Expr) -> Result<Expr, SemanticError> {
    rewrite(e)
}

fn rewrite(e: Expr) -> Result<Expr, SemanticError> {
    Ok(match e {
        Expr::Or(a, b) => {
            let a = convert(rewrite(*a)?, XPathType::Boolean);
            let b = convert(rewrite(*b)?, XPathType::Boolean);
            Expr::Or(Box::new(a), Box::new(b))
        }
        Expr::And(a, b) => {
            let a = convert(rewrite(*a)?, XPathType::Boolean);
            let b = convert(rewrite(*b)?, XPathType::Boolean);
            Expr::And(Box::new(a), Box::new(b))
        }
        Expr::Compare(op, a, b) => {
            let a = rewrite(*a)?;
            let b = rewrite(*b)?;
            rewrite_compare(op, a, b)
        }
        Expr::Arith(op, a, b) => {
            let a = convert(rewrite(*a)?, XPathType::Number);
            let b = convert(rewrite(*b)?, XPathType::Number);
            Expr::Arith(op, Box::new(a), Box::new(b))
        }
        Expr::Neg(a) => Expr::Neg(Box::new(convert(rewrite(*a)?, XPathType::Number))),
        Expr::Union(parts) => {
            let mut out = Vec::with_capacity(parts.len());
            for p in parts {
                let p = rewrite(p)?;
                if static_type(&p) != XPathType::NodeSet && static_type(&p) != XPathType::Any {
                    return err(format!("operand of `|` must be a node-set: `{p}`"));
                }
                out.push(p);
            }
            Expr::Union(out)
        }
        Expr::Path(p) => Expr::Path(rewrite_path(p)?),
        Expr::Filter(inner, preds) => {
            let inner = rewrite(*inner)?;
            let t = static_type(&inner);
            if t != XPathType::NodeSet && t != XPathType::Any {
                return err(format!("filter expression must be a node-set: `{inner}`"));
            }
            let preds = preds.into_iter().map(rewrite_predicate).collect::<Result<Vec<_>, _>>()?;
            Expr::Filter(Box::new(inner), preds)
        }
        lit @ (Expr::Literal(_) | Expr::Number(_) | Expr::VarRef(_)) => lit,
        Expr::FunctionCall(name, args) => rewrite_call(name, args)?,
    })
}

fn rewrite_compare(op: CompOp, a: Expr, b: Expr) -> Expr {
    use XPathType::*;
    let (ta, tb) = (static_type(&a), static_type(&b));
    // Node-sets get the existential semantics in the translation; only
    // insert conversions between the primitive types here (XPath §3.4).
    if ta == NodeSet || tb == NodeSet || ta == Any || tb == Any {
        return Expr::Compare(op, Box::new(a), Box::new(b));
    }
    match op {
        CompOp::Eq | CompOp::Ne => {
            if ta == Boolean || tb == Boolean {
                Expr::Compare(op, Box::new(convert(a, Boolean)), Box::new(convert(b, Boolean)))
            } else if ta == Number || tb == Number {
                Expr::Compare(op, Box::new(convert(a, Number)), Box::new(convert(b, Number)))
            } else {
                Expr::Compare(op, Box::new(a), Box::new(b))
            }
        }
        // Relational comparisons always go through numbers.
        _ => Expr::Compare(op, Box::new(convert(a, Number)), Box::new(convert(b, Number))),
    }
}

fn rewrite_path(p: PathExpr) -> Result<PathExpr, SemanticError> {
    let start = match p.start {
        PathStart::Expr(e) => {
            let e = rewrite(*e)?;
            let t = static_type(&e);
            if t != XPathType::NodeSet && t != XPathType::Any {
                return err(format!("path start must be a node-set: `{e}`"));
            }
            PathStart::Expr(Box::new(e))
        }
        other => other,
    };
    let steps = p
        .steps
        .into_iter()
        .map(|s| {
            let predicates =
                s.predicates.into_iter().map(rewrite_predicate).collect::<Result<Vec<_>, _>>()?;
            Ok(Step { axis: s.axis, node_test: s.node_test, predicates })
        })
        .collect::<Result<Vec<_>, SemanticError>>()?;
    Ok(PathExpr { start, steps })
}

fn rewrite_predicate(p: Predicate) -> Result<Predicate, SemanticError> {
    let e = rewrite(p.expr)?;
    let e = match static_type(&e) {
        // `[n]` means `[position() = n]` (XPath §2.4).
        XPathType::Number => {
            Expr::Compare(CompOp::Eq, Box::new(call("position", vec![])), Box::new(e))
        }
        XPathType::Boolean => e,
        // Node-sets, strings and unknown-typed variables convert to
        // boolean; the translation maps boolean(node-set) to the internal
        // exists() aggregate (paper §3.3.2).
        _ => call("boolean", vec![e]),
    };
    Ok(Predicate { expr: e })
}

fn rewrite_call(name: String, args: Vec<Expr>) -> Result<Expr, SemanticError> {
    let Some(sig) = lookup(&name) else {
        return err(format!("unknown function `{name}()`"));
    };
    let mut args = args.into_iter().map(rewrite).collect::<Result<Vec<_>, _>>()?;
    // Context-node default argument.
    if args.is_empty() && sig.context_default {
        args.push(context_node_path());
    }
    if args.len() < sig.min_args {
        return err(format!(
            "`{name}()` needs at least {} argument(s), got {}",
            sig.min_args,
            args.len()
        ));
    }
    if args.len() > sig.max_args {
        return err(format!(
            "`{name}()` takes at most {} argument(s), got {}",
            sig.max_args,
            args.len()
        ));
    }
    // Parameter conversions.
    let args = args
        .into_iter()
        .enumerate()
        .map(|(i, a)| {
            let want = param_type(sig, i);
            let have = static_type(&a);
            match want {
                XPathType::NodeSet => {
                    if have == XPathType::NodeSet || have == XPathType::Any {
                        Ok(a)
                    } else {
                        err(format!(
                            "argument {} of `{name}()` must be a node-set, got `{a}`",
                            i + 1
                        ))
                    }
                }
                _ => Ok(convert(a, want)),
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Expr::FunctionCall(name, args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn a(src: &str) -> Expr {
        analyze(parse(src).unwrap()).unwrap_or_else(|e| panic!("analyze `{src}`: {e}"))
    }

    #[test]
    fn numeric_predicate_becomes_positional() {
        let e = a("a[3]");
        assert_eq!(e.to_string(), "child::a[(position() = 3)]");
    }

    #[test]
    fn string_predicate_becomes_boolean() {
        let e = a("a['x']");
        assert_eq!(e.to_string(), "child::a[boolean('x')]");
    }

    #[test]
    fn nodeset_predicate_becomes_boolean() {
        let e = a("a[b]");
        assert_eq!(e.to_string(), "child::a[boolean(child::b)]");
    }

    #[test]
    fn boolean_predicate_untouched() {
        let e = a("a[b = 'x']");
        assert_eq!(e.to_string(), "child::a[(child::b = 'x')]");
    }

    #[test]
    fn arith_operands_converted() {
        let e = a("'2' + 1");
        assert_eq!(e.to_string(), "(number('2') + 1)");
        // Node-set operand also goes through number().
        let e = a("a + 1");
        assert_eq!(e.to_string(), "(number(child::a) + 1)");
    }

    #[test]
    fn and_or_operands_converted() {
        let e = a("a and 1");
        assert_eq!(e.to_string(), "(boolean(child::a) and boolean(1))");
    }

    #[test]
    fn compare_conversion_rules() {
        // boolean wins for =
        assert_eq!(a("true() = 'x'").to_string(), "(true() = boolean('x'))");
        // number wins over string for =
        assert_eq!(a("1 = '1'").to_string(), "(1 = number('1'))");
        // strings compared directly
        assert_eq!(a("'a' = 'b'").to_string(), "('a' = 'b')");
        // relational always numeric
        assert_eq!(a("'a' < 'b'").to_string(), "(number('a') < number('b'))");
        // node-sets left alone (existential translation)
        assert_eq!(a("a = b").to_string(), "(child::a = child::b)");
        assert_eq!(a("a < 1").to_string(), "(child::a < 1)");
    }

    #[test]
    fn context_default_arguments_supplied() {
        assert_eq!(a("string()").to_string(), "string(self::node())");
        assert_eq!(a("string-length()").to_string(), "string-length(string(self::node()))");
        assert_eq!(a("name()").to_string(), "name(self::node())");
        assert_eq!(a("normalize-space()").to_string(), "normalize-space(string(self::node()))");
    }

    #[test]
    fn function_argument_conversions() {
        assert_eq!(a("contains(a, 1)").to_string(), "contains(string(child::a), string(1))");
        assert_eq!(a("not(a)").to_string(), "not(boolean(child::a))");
        assert_eq!(a("floor('3.7')").to_string(), "floor(number('3.7'))");
    }

    #[test]
    fn arity_errors() {
        assert!(analyze(parse("count()").unwrap()).is_err());
        assert!(analyze(parse("count(a, b)").unwrap()).is_err());
        assert!(analyze(parse("concat('x')").unwrap()).is_err());
        assert!(analyze(parse("substring('x', 1, 2, 3)").unwrap()).is_err());
        assert!(analyze(parse("true(1)").unwrap()).is_err());
    }

    #[test]
    fn unknown_function_rejected() {
        assert!(analyze(parse("frobnicate(a)").unwrap()).is_err());
    }

    #[test]
    fn nodeset_parameter_type_enforced() {
        assert!(analyze(parse("count('x')").unwrap()).is_err());
        assert!(analyze(parse("sum(1)").unwrap()).is_err());
        // Variables are allowed (type unknown until runtime).
        assert!(analyze(parse("count($v)").unwrap()).is_ok());
    }

    #[test]
    fn union_operands_must_be_nodesets() {
        assert!(analyze(parse("a | 'x'").unwrap()).is_err());
        assert!(analyze(parse("a | $v").unwrap()).is_ok());
    }

    #[test]
    fn filter_base_must_be_nodeset() {
        assert!(analyze(parse("('x')[1]").unwrap()).is_err());
        assert!(analyze(parse("(a)[1]").unwrap()).is_ok());
    }

    #[test]
    fn variadic_concat_converts_all() {
        assert_eq!(a("concat(1, a, 'x')").to_string(), "concat(string(1), string(child::a), 'x')");
    }

    #[test]
    fn nested_path_predicates_rewritten() {
        let e = a("a[b[2]]/c");
        assert_eq!(e.to_string(), "child::a[boolean(child::b[(position() = 2)])]/child::c");
    }
}
