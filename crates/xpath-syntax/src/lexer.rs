//! XPath 1.0 tokenizer, including the disambiguation rules of W3C §3.7:
//!
//! * if the preceding token is an expression-ending token, `*` is the
//!   multiply operator and `and`/`or`/`div`/`mod` are operator names;
//! * an NCName followed by `(` is a function name or node-type test;
//! * an NCName followed by `::` is an axis name.

use std::fmt;

/// A token with its source offset (bytes).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Token kind/payload.
    pub kind: Tok,
    /// Byte offset in the query string (for error messages).
    pub offset: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Numeric literal.
    Number(f64),
    /// String literal (quotes removed).
    Literal(String),
    /// QName or NCName used as a name (element/function/axis name).
    Name(String),
    /// `name(` where the lexer has established the name is followed by `(`
    /// (function call or node-type test). The `(` is *not* consumed.
    FuncName(String),
    /// Axis name followed by `::` (the `::` is *not* consumed).
    AxisName(String),
    /// `$qname`
    Var(String),
    /// `prefix:*`
    NsWildcard(String),
    Slash,
    DoubleSlash,
    Pipe,
    Plus,
    Minus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Star,
    Multiply,
    And,
    Or,
    Div,
    Mod,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Dot,
    DotDot,
    At,
    Comma,
    ColonColon,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Number(n) => write!(f, "{n}"),
            Tok::Literal(s) => write!(f, "'{s}'"),
            Tok::Name(s) | Tok::FuncName(s) | Tok::AxisName(s) => write!(f, "{s}"),
            Tok::Var(s) => write!(f, "${s}"),
            Tok::NsWildcard(p) => write!(f, "{p}:*"),
            Tok::Slash => write!(f, "/"),
            Tok::DoubleSlash => write!(f, "//"),
            Tok::Pipe => write!(f, "|"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Star | Tok::Multiply => write!(f, "*"),
            Tok::And => write!(f, "and"),
            Tok::Or => write!(f, "or"),
            Tok::Div => write!(f, "div"),
            Tok::Mod => write!(f, "mod"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Dot => write!(f, "."),
            Tok::DotDot => write!(f, ".."),
            Tok::At => write!(f, "@"),
            Tok::Comma => write!(f, ","),
            Tok::ColonColon => write!(f, "::"),
        }
    }
}

/// Lexical error with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// Byte offset in the query string.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lexical error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_ncname_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ncname_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
}

/// True if `t` can end an expression — the condition under which the
/// following `*` / `and` / `or` / `div` / `mod` are operators.
fn ends_expression(t: &Tok) -> bool {
    matches!(
        t,
        Tok::Number(_)
            | Tok::Literal(_)
            | Tok::Name(_)
            | Tok::NsWildcard(_)
            | Tok::Var(_)
            | Tok::RParen
            | Tok::RBracket
            | Tok::Dot
            | Tok::DotDot
            | Tok::Star
    )
}

/// Tokenize a complete XPath expression.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let chars: Vec<char> = input.chars().collect();
    // Byte offsets per char index for error reporting.
    let mut offsets = Vec::with_capacity(chars.len() + 1);
    {
        let mut off = 0;
        for c in &chars {
            offsets.push(off);
            off += c.len_utf8();
        }
        offsets.push(off);
    }
    let mut i = 0usize;
    let mut out: Vec<Token> = Vec::new();
    let mut prev: Option<Tok> = None;

    macro_rules! push {
        ($kind:expr, $at:expr) => {{
            let k = $kind;
            prev = Some(k.clone());
            out.push(Token { kind: k, offset: offsets[$at] });
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '(' => {
                push!(Tok::LParen, start);
                i += 1;
            }
            ')' => {
                push!(Tok::RParen, start);
                i += 1;
            }
            '[' => {
                push!(Tok::LBracket, start);
                i += 1;
            }
            ']' => {
                push!(Tok::RBracket, start);
                i += 1;
            }
            '@' => {
                push!(Tok::At, start);
                i += 1;
            }
            ',' => {
                push!(Tok::Comma, start);
                i += 1;
            }
            '|' => {
                push!(Tok::Pipe, start);
                i += 1;
            }
            '+' => {
                push!(Tok::Plus, start);
                i += 1;
            }
            '-' => {
                push!(Tok::Minus, start);
                i += 1;
            }
            '=' => {
                push!(Tok::Eq, start);
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    push!(Tok::Ne, start);
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "`!` must be followed by `=`".into(),
                        offset: offsets[start],
                    });
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    push!(Tok::Le, start);
                    i += 2;
                } else {
                    push!(Tok::Lt, start);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    push!(Tok::Ge, start);
                    i += 2;
                } else {
                    push!(Tok::Gt, start);
                    i += 1;
                }
            }
            '/' => {
                if chars.get(i + 1) == Some(&'/') {
                    push!(Tok::DoubleSlash, start);
                    i += 2;
                } else {
                    push!(Tok::Slash, start);
                    i += 1;
                }
            }
            ':' => {
                if chars.get(i + 1) == Some(&':') {
                    push!(Tok::ColonColon, start);
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "stray `:` (names with prefixes are lexed as one token)".into(),
                        offset: offsets[start],
                    });
                }
            }
            '*' => {
                // Disambiguation: after an expression-ending token `*` is
                // the multiply operator, otherwise a wildcard name test.
                let kind = if prev.as_ref().is_some_and(ends_expression) {
                    Tok::Multiply
                } else {
                    Tok::Star
                };
                push!(kind, start);
                i += 1;
            }
            '.' => {
                if chars.get(i + 1) == Some(&'.') {
                    push!(Tok::DotDot, start);
                    i += 2;
                } else if chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                    // .5 style number
                    let mut j = i + 1;
                    while chars.get(j).is_some_and(|c| c.is_ascii_digit()) {
                        j += 1;
                    }
                    let text: String = chars[i..j].iter().collect();
                    let n: f64 = text.parse().expect("digits parse");
                    push!(Tok::Number(n), start);
                    i = j;
                } else {
                    push!(Tok::Dot, start);
                    i += 1;
                }
            }
            '0'..='9' => {
                let mut j = i;
                while chars.get(j).is_some_and(|c| c.is_ascii_digit()) {
                    j += 1;
                }
                if chars.get(j) == Some(&'.') {
                    j += 1;
                    while chars.get(j).is_some_and(|c| c.is_ascii_digit()) {
                        j += 1;
                    }
                }
                let text: String = chars[i..j].iter().collect();
                let n: f64 = text.parse().map_err(|_| LexError {
                    message: format!("bad number `{text}`"),
                    offset: offsets[start],
                })?;
                push!(Tok::Number(n), start);
                i = j;
            }
            '\'' | '"' => {
                let quote = c;
                let mut j = i + 1;
                while j < chars.len() && chars[j] != quote {
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        offset: offsets[start],
                    });
                }
                let text: String = chars[i + 1..j].iter().collect();
                push!(Tok::Literal(text), start);
                i = j + 1;
            }
            '$' => {
                i += 1;
                if !chars.get(i).copied().is_some_and(is_ncname_start) {
                    return Err(LexError {
                        message: "expected variable name after `$`".into(),
                        offset: offsets[start],
                    });
                }
                let mut j = i;
                while chars.get(j).copied().is_some_and(is_ncname_char) {
                    j += 1;
                }
                // Optional prefix:local
                if chars.get(j) == Some(&':')
                    && chars.get(j + 1).copied().is_some_and(is_ncname_start)
                {
                    j += 1;
                    while chars.get(j).copied().is_some_and(is_ncname_char) {
                        j += 1;
                    }
                }
                let text: String = chars[i..j].iter().collect();
                push!(Tok::Var(text), start);
                i = j;
            }
            c if is_ncname_start(c) => {
                let mut j = i;
                while chars.get(j).copied().is_some_and(is_ncname_char) {
                    j += 1;
                }
                // QName / prefix:* handling. A single ':' joins two NCNames;
                // '::' is the axis separator and is left alone.
                let mut text: String = chars[i..j].iter().collect();
                if chars.get(j) == Some(&':') && chars.get(j + 1) != Some(&':') {
                    if chars.get(j + 1) == Some(&'*') {
                        push!(Tok::NsWildcard(text), start);
                        i = j + 2;
                        continue;
                    }
                    if chars.get(j + 1).copied().is_some_and(is_ncname_start) {
                        let mut k = j + 1;
                        while chars.get(k).copied().is_some_and(is_ncname_char) {
                            k += 1;
                        }
                        text.push(':');
                        text.extend(&chars[j + 1..k]);
                        j = k;
                    }
                }
                // Operator-name disambiguation.
                if prev.as_ref().is_some_and(ends_expression) {
                    let op = match text.as_str() {
                        "and" => Some(Tok::And),
                        "or" => Some(Tok::Or),
                        "div" => Some(Tok::Div),
                        "mod" => Some(Tok::Mod),
                        _ => None,
                    };
                    if let Some(op) = op {
                        push!(op, start);
                        i = j;
                        continue;
                    }
                }
                // Look ahead (skipping whitespace) for `(` or `::`.
                let mut k = j;
                while chars.get(k).is_some_and(|c| c.is_whitespace()) {
                    k += 1;
                }
                let kind = if chars.get(k) == Some(&'(') {
                    Tok::FuncName(text)
                } else if chars.get(k) == Some(&':') && chars.get(k + 1) == Some(&':') {
                    Tok::AxisName(text)
                } else {
                    Tok::Name(text)
                };
                push!(kind, start);
                i = j;
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    offset: offsets[start],
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_path() {
        assert_eq!(
            kinds("/child::a/b"),
            vec![
                Tok::Slash,
                Tok::AxisName("child".into()),
                Tok::ColonColon,
                Tok::Name("a".into()),
                Tok::Slash,
                Tok::Name("b".into())
            ]
        );
    }

    #[test]
    fn star_disambiguation() {
        // nametest * after '/' vs multiply after a name.
        assert_eq!(kinds("a * b")[1], Tok::Multiply);
        assert_eq!(kinds("/*")[1], Tok::Star);
        assert_eq!(kinds("4 * 4")[1], Tok::Multiply);
        assert_eq!(kinds("a/*")[2], Tok::Star);
        assert_eq!(kinds("@*")[1], Tok::Star);
        assert_eq!(kinds("(a) * 2")[3], Tok::Multiply);
    }

    #[test]
    fn operator_name_disambiguation() {
        // `and` after a name is the operator; at the start it is a name.
        assert_eq!(kinds("a and b")[1], Tok::And);
        assert_eq!(kinds("and")[0], Tok::Name("and".into()));
        assert_eq!(kinds("div div div")[1], Tok::Div);
        assert_eq!(kinds("mod mod mod")[0], Tok::Name("mod".into()));
        assert_eq!(kinds("a or or")[1], Tok::Or);
    }

    #[test]
    fn function_vs_nodetype_names() {
        assert_eq!(kinds("count(a)")[0], Tok::FuncName("count".into()));
        assert_eq!(kinds("text()")[0], Tok::FuncName("text".into()));
        // With whitespace before the paren.
        assert_eq!(kinds("count (a)")[0], Tok::FuncName("count".into()));
    }

    #[test]
    fn numbers_and_literals() {
        assert_eq!(kinds("2.75")[0], Tok::Number(2.75));
        assert_eq!(kinds(".5")[0], Tok::Number(0.5));
        assert_eq!(kinds("5.")[0], Tok::Number(5.0));
        assert_eq!(kinds("'it'")[0], Tok::Literal("it".into()));
        assert_eq!(kinds("\"dq\"")[0], Tok::Literal("dq".into()));
    }

    #[test]
    fn variables() {
        assert_eq!(kinds("$x + $ns:y")[0], Tok::Var("x".into()));
        assert_eq!(kinds("$x + $ns:y")[2], Tok::Var("ns:y".into()));
    }

    #[test]
    fn qnames_and_ns_wildcards() {
        assert_eq!(kinds("ns:local")[0], Tok::Name("ns:local".into()));
        assert_eq!(kinds("ns:*")[0], Tok::NsWildcard("ns".into()));
        // `a::b` keeps `a` as an axis name.
        assert_eq!(kinds("ancestor::b")[0], Tok::AxisName("ancestor".into()));
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a<=b!=c>=d<e>f"),
            vec![
                Tok::Name("a".into()),
                Tok::Le,
                Tok::Name("b".into()),
                Tok::Ne,
                Tok::Name("c".into()),
                Tok::Ge,
                Tok::Name("d".into()),
                Tok::Lt,
                Tok::Name("e".into()),
                Tok::Gt,
                Tok::Name("f".into())
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("$").is_err());
        assert!(tokenize("#").is_err());
        let err = tokenize("abc #").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn double_slash_and_abbreviations() {
        assert_eq!(
            kinds("//a/..//."),
            vec![
                Tok::DoubleSlash,
                Tok::Name("a".into()),
                Tok::Slash,
                Tok::DotDot,
                Tok::DoubleSlash,
                Tok::Dot
            ]
        );
    }
}
