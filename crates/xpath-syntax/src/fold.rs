//! Rewrite phase (compiler phase 4, paper §5.1): constant folding.
//!
//! Pure scalar operators and functions with constant arguments are
//! evaluated at compile time using the shared value semantics of
//! [`crate::xvalue`], so both engines execute pre-folded plans.

use crate::ast::{CompOp, Expr, PathStart, Predicate};
use crate::xvalue;

/// A compile-time constant.
#[derive(Clone, Debug, PartialEq)]
pub enum Const {
    /// Boolean constant.
    Bool(bool),
    /// Numeric constant.
    Num(f64),
    /// String constant.
    Str(String),
}

impl Const {
    fn to_expr(&self) -> Expr {
        match self {
            Const::Bool(true) => Expr::FunctionCall("true".into(), vec![]),
            Const::Bool(false) => Expr::FunctionCall("false".into(), vec![]),
            Const::Num(n) => {
                if *n < 0.0 && !n.is_nan() {
                    Expr::Neg(Box::new(Expr::Number(-*n)))
                } else {
                    Expr::Number(*n)
                }
            }
            Const::Str(s) => Expr::Literal(s.clone()),
        }
    }

    fn as_bool(&self) -> bool {
        match self {
            Const::Bool(b) => *b,
            Const::Num(n) => xvalue::number_to_boolean(*n),
            Const::Str(s) => xvalue::string_to_boolean(s),
        }
    }

    fn as_num(&self) -> f64 {
        match self {
            Const::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Const::Num(n) => *n,
            Const::Str(s) => xvalue::string_to_number(s),
        }
    }

    fn as_str(&self) -> String {
        match self {
            Const::Bool(b) => if *b { "true" } else { "false" }.to_owned(),
            Const::Num(n) => xvalue::number_to_string(*n),
            Const::Str(s) => s.clone(),
        }
    }
}

/// Extract the constant value of an expression, if it is one.
pub fn as_const(e: &Expr) -> Option<Const> {
    match e {
        Expr::Number(n) => Some(Const::Num(*n)),
        Expr::Literal(s) => Some(Const::Str(s.clone())),
        Expr::Neg(inner) => as_const(inner).map(|c| Const::Num(-c.as_num())),
        Expr::FunctionCall(name, args) if args.is_empty() => match name.as_str() {
            "true" => Some(Const::Bool(true)),
            "false" => Some(Const::Bool(false)),
            _ => None,
        },
        _ => None,
    }
}

/// Fold constants bottom-up. Idempotent.
pub fn fold(e: Expr) -> Expr {
    match e {
        Expr::Or(a, b) => {
            let a = fold(*a);
            let b = fold(*b);
            match (as_const(&a), as_const(&b)) {
                (Some(ca), Some(cb)) => Const::Bool(ca.as_bool() || cb.as_bool()).to_expr(),
                // `true or e` folds even with non-constant e only when e is
                // side-effect free — which all XPath expressions are.
                (Some(ca), None) if ca.as_bool() => Const::Bool(true).to_expr(),
                (Some(ca), None) if !ca.as_bool() => b,
                (None, Some(cb)) if !cb.as_bool() => a,
                _ => Expr::Or(Box::new(a), Box::new(b)),
            }
        }
        Expr::And(a, b) => {
            let a = fold(*a);
            let b = fold(*b);
            match (as_const(&a), as_const(&b)) {
                (Some(ca), Some(cb)) => Const::Bool(ca.as_bool() && cb.as_bool()).to_expr(),
                (Some(ca), None) if !ca.as_bool() => Const::Bool(false).to_expr(),
                (Some(ca), None) if ca.as_bool() => b,
                (None, Some(cb)) if cb.as_bool() => a,
                _ => Expr::And(Box::new(a), Box::new(b)),
            }
        }
        Expr::Compare(op, a, b) => {
            let a = fold(*a);
            let b = fold(*b);
            match (as_const(&a), as_const(&b)) {
                (Some(ca), Some(cb)) => {
                    let v = match op {
                        CompOp::Eq | CompOp::Ne => {
                            let eq = match (&ca, &cb) {
                                (Const::Bool(_), _) | (_, Const::Bool(_)) => {
                                    ca.as_bool() == cb.as_bool()
                                }
                                (Const::Num(_), _) | (_, Const::Num(_)) => {
                                    ca.as_num() == cb.as_num()
                                }
                                _ => ca.as_str() == cb.as_str(),
                            };
                            if op == CompOp::Eq {
                                eq
                            } else {
                                !eq
                            }
                        }
                        _ => op.apply_numbers(ca.as_num(), cb.as_num()),
                    };
                    Const::Bool(v).to_expr()
                }
                _ => Expr::Compare(op, Box::new(a), Box::new(b)),
            }
        }
        Expr::Arith(op, a, b) => {
            let a = fold(*a);
            let b = fold(*b);
            match (as_const(&a), as_const(&b)) {
                (Some(ca), Some(cb)) => Const::Num(op.apply(ca.as_num(), cb.as_num())).to_expr(),
                _ => Expr::Arith(op, Box::new(a), Box::new(b)),
            }
        }
        Expr::Neg(a) => {
            let a = fold(*a);
            match as_const(&a) {
                Some(c) => Const::Num(-c.as_num()).to_expr(),
                None => Expr::Neg(Box::new(a)),
            }
        }
        Expr::Union(parts) => Expr::Union(parts.into_iter().map(fold).collect()),
        Expr::Path(mut p) => {
            if let PathStart::Expr(e) = p.start {
                p.start = PathStart::Expr(Box::new(fold(*e)));
            }
            for s in &mut p.steps {
                for pred in &mut s.predicates {
                    pred.expr = fold(std::mem::replace(&mut pred.expr, Expr::Number(0.0)));
                }
            }
            Expr::Path(p)
        }
        Expr::Filter(inner, preds) => Expr::Filter(
            Box::new(fold(*inner)),
            preds.into_iter().map(|p| Predicate { expr: fold(p.expr) }).collect(),
        ),
        Expr::FunctionCall(name, args) => {
            let args: Vec<Expr> = args.into_iter().map(fold).collect();
            fold_call(name, args)
        }
        lit => lit,
    }
}

fn fold_call(name: String, args: Vec<Expr>) -> Expr {
    let consts: Option<Vec<Const>> = args.iter().map(as_const).collect();
    if let Some(c) = consts {
        let folded = match (name.as_str(), c.as_slice()) {
            ("boolean", [x]) => Some(Const::Bool(x.as_bool())),
            ("not", [x]) => Some(Const::Bool(!x.as_bool())),
            ("number", [x]) => Some(Const::Num(x.as_num())),
            ("string", [x]) => Some(Const::Str(x.as_str())),
            ("floor", [x]) => Some(Const::Num(x.as_num().floor())),
            ("ceiling", [x]) => Some(Const::Num(x.as_num().ceil())),
            ("round", [x]) => Some(Const::Num(xvalue::xpath_round(x.as_num()))),
            ("string-length", [x]) => Some(Const::Num(xvalue::string_length(&x.as_str()))),
            ("normalize-space", [x]) => Some(Const::Str(xvalue::normalize_space(&x.as_str()))),
            ("contains", [a, b]) => Some(Const::Bool(a.as_str().contains(&b.as_str()))),
            ("starts-with", [a, b]) => Some(Const::Bool(a.as_str().starts_with(&b.as_str()))),
            ("substring-before", [a, b]) => {
                Some(Const::Str(xvalue::substring_before(&a.as_str(), &b.as_str())))
            }
            ("substring-after", [a, b]) => {
                Some(Const::Str(xvalue::substring_after(&a.as_str(), &b.as_str())))
            }
            ("substring", [s, p]) => {
                Some(Const::Str(xvalue::xpath_substring(&s.as_str(), p.as_num(), None)))
            }
            ("substring", [s, p, l]) => {
                Some(Const::Str(xvalue::xpath_substring(&s.as_str(), p.as_num(), Some(l.as_num()))))
            }
            ("translate", [s, f, t]) => {
                Some(Const::Str(xvalue::translate(&s.as_str(), &f.as_str(), &t.as_str())))
            }
            ("concat", parts) if parts.len() >= 2 => {
                Some(Const::Str(parts.iter().map(|p| p.as_str()).collect()))
            }
            _ => None,
        };
        if let Some(c) = folded {
            return c.to_expr();
        }
    }
    Expr::FunctionCall(name, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::semantic::analyze;

    fn f(src: &str) -> String {
        fold(analyze(parse(src).unwrap()).unwrap()).to_string()
    }

    #[test]
    fn arithmetic_folds() {
        assert_eq!(f("1 + 2 * 3"), "7");
        assert_eq!(f("10 div 4"), "2.5");
        assert_eq!(f("7 mod 3"), "1");
        assert_eq!(f("-(3 + 4)"), "(-7)");
        assert_eq!(f("last() - 10 + 0 * 3"), "((last() - 10) + 0)");
    }

    #[test]
    fn comparisons_fold() {
        assert_eq!(f("1 < 2"), "true()");
        assert_eq!(f("'a' = 'b'"), "false()");
        assert_eq!(f("2 = '2'"), "true()");
        assert_eq!(f("true() = 'x'"), "true()");
    }

    #[test]
    fn boolean_logic_folds_and_short_circuits() {
        assert_eq!(f("true() and false()"), "false()");
        assert_eq!(f("1 or 0"), "true()");
        // constant-true absorbs the other operand
        assert_eq!(f("true() or a"), "true()");
        assert_eq!(f("false() and a"), "false()");
        // constant-identity drops out
        assert_eq!(f("true() and (a = 'x')"), "(child::a = 'x')");
        assert_eq!(f("false() or (a = 'x')"), "(child::a = 'x')");
    }

    #[test]
    fn string_functions_fold() {
        assert_eq!(f("concat('a', 'b', 'c')"), "'abc'");
        assert_eq!(f("contains('hello', 'ell')"), "true()");
        assert_eq!(f("substring('12345', 2, 3)"), "'234'");
        assert_eq!(f("translate('bar', 'abc', 'ABC')"), "'BAr'");
        assert_eq!(f("string-length('abc')"), "3");
        assert_eq!(f("normalize-space('  a  b ')"), "'a b'");
    }

    #[test]
    fn conversions_fold() {
        assert_eq!(f("number('3.5')"), "3.5");
        assert_eq!(f("boolean(0)"), "false()");
        assert_eq!(f("string(42)"), "'42'");
        assert_eq!(f("floor(3.7)"), "3");
        assert_eq!(f("ceiling(3.2)"), "4");
        assert_eq!(f("round(2.5)"), "3");
    }

    #[test]
    fn non_constants_left_alone() {
        assert_eq!(f("a + 1"), "(number(child::a) + 1)");
        assert_eq!(f("position() = 1"), "(position() = 1)");
        assert_eq!(f("count(a)"), "count(child::a)");
    }

    #[test]
    fn folds_inside_predicates() {
        assert_eq!(f("a[1 + 1]"), "child::a[(position() = 2)]");
        assert_eq!(f("a[@x = concat('y', 'z')]"), "child::a[(attribute::x = 'yz')]");
    }

    #[test]
    fn idempotent() {
        for src in ["1+2", "a[1+1]", "concat('a','b')", "a and true()"] {
            let once = fold(analyze(parse(src).unwrap()).unwrap());
            let twice = fold(once.clone());
            assert_eq!(once, twice);
        }
    }

    #[test]
    fn nan_comparisons() {
        assert_eq!(f("number('x') = number('x')"), "false()", "NaN != NaN");
        assert_eq!(f("number('x') < 1"), "false()");
    }
}
