//! The XPath 1.0 core function library: signatures used by semantic
//! analysis (arity checking, implicit-conversion insertion) and by both
//! execution engines.

/// The four XPath 1.0 value types plus `Any` for polymorphic parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum XPathType {
    /// Node-set (tuple sequence in the algebra).
    NodeSet,
    /// Boolean.
    Boolean,
    /// IEEE-754 double.
    Number,
    /// Unicode string.
    String,
    /// Parameter accepts any type (conversion is function-specific).
    Any,
}

/// A function signature.
#[derive(Clone, Debug)]
pub struct Signature {
    /// Function name as written in queries.
    pub name: &'static str,
    /// Minimum argument count.
    pub min_args: usize,
    /// Maximum argument count (`usize::MAX` = variadic).
    pub max_args: usize,
    /// Parameter types; the last entry repeats for variadic functions.
    pub params: &'static [XPathType],
    /// Result type.
    pub result: XPathType,
    /// True if the function's value depends on the context node even with
    /// zero arguments (e.g. `string()`, `name()`), i.e. a missing argument
    /// defaults to the context node.
    pub context_default: bool,
    /// True if the function reads context position/size.
    pub positional: bool,
}

use XPathType::*;

/// All 27 core functions, plus the internal `exists` aggregate the
/// translation introduces for node-set-to-boolean conversion (paper §3.3.2
/// and §3.6.2).
pub static SIGNATURES: &[Signature] = &[
    // Node-set functions
    sig("last", 0, 0, &[], Number, false, true),
    sig("position", 0, 0, &[], Number, false, true),
    sig("count", 1, 1, &[NodeSet], Number, false, false),
    sig("id", 1, 1, &[Any], NodeSet, false, false),
    sig("local-name", 0, 1, &[NodeSet], String, true, false),
    sig("namespace-uri", 0, 1, &[NodeSet], String, true, false),
    sig("name", 0, 1, &[NodeSet], String, true, false),
    // String functions
    sig("string", 0, 1, &[Any], String, true, false),
    sig("concat", 2, usize::MAX, &[String], String, false, false),
    sig("starts-with", 2, 2, &[String, String], Boolean, false, false),
    sig("contains", 2, 2, &[String, String], Boolean, false, false),
    sig("substring-before", 2, 2, &[String, String], String, false, false),
    sig("substring-after", 2, 2, &[String, String], String, false, false),
    sig("substring", 2, 3, &[String, Number, Number], String, false, false),
    sig("string-length", 0, 1, &[String], Number, true, false),
    sig("normalize-space", 0, 1, &[String], String, true, false),
    sig("translate", 3, 3, &[String, String, String], String, false, false),
    // Boolean functions
    sig("boolean", 1, 1, &[Any], Boolean, false, false),
    sig("not", 1, 1, &[Boolean], Boolean, false, false),
    sig("true", 0, 0, &[], Boolean, false, false),
    sig("false", 0, 0, &[], Boolean, false, false),
    sig("lang", 1, 1, &[String], Boolean, false, false),
    // Number functions
    sig("number", 0, 1, &[Any], Number, true, false),
    sig("sum", 1, 1, &[NodeSet], Number, false, false),
    sig("floor", 1, 1, &[Number], Number, false, false),
    sig("ceiling", 1, 1, &[Number], Number, false, false),
    sig("round", 1, 1, &[Number], Number, false, false),
    // Internal: node-set existence aggregate (introduced by translation).
    sig("exists", 1, 1, &[NodeSet], Boolean, false, false),
];

const fn sig(
    name: &'static str,
    min_args: usize,
    max_args: usize,
    params: &'static [XPathType],
    result: XPathType,
    context_default: bool,
    positional: bool,
) -> Signature {
    Signature {
        name,
        min_args,
        max_args,
        params,
        result,
        context_default,
        positional,
    }
}

/// Look up a function signature by name.
pub fn lookup(name: &str) -> Option<&'static Signature> {
    SIGNATURES.iter().find(|s| s.name == name)
}

/// Parameter type at position `i` (repeats the last for variadics).
pub fn param_type(sig: &Signature, i: usize) -> XPathType {
    if sig.params.is_empty() {
        Any
    } else {
        *sig.params.get(i).unwrap_or(sig.params.last().expect("non-empty"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_library_complete() {
        // XPath 1.0 defines 27 core functions.
        let core: Vec<&str> =
            SIGNATURES.iter().map(|s| s.name).filter(|&n| n != "exists").collect();
        assert_eq!(core.len(), 27);
        for f in [
            "last",
            "position",
            "count",
            "id",
            "local-name",
            "namespace-uri",
            "name",
            "string",
            "concat",
            "starts-with",
            "contains",
            "substring-before",
            "substring-after",
            "substring",
            "string-length",
            "normalize-space",
            "translate",
            "boolean",
            "not",
            "true",
            "false",
            "lang",
            "number",
            "sum",
            "floor",
            "ceiling",
            "round",
        ] {
            assert!(lookup(f).is_some(), "{f} missing");
        }
    }

    #[test]
    fn arity_data() {
        let c = lookup("concat").unwrap();
        assert_eq!(c.min_args, 2);
        assert_eq!(c.max_args, usize::MAX);
        assert_eq!(param_type(c, 7), XPathType::String);
        let s = lookup("substring").unwrap();
        assert_eq!((s.min_args, s.max_args), (2, 3));
        assert!(lookup("nonsense").is_none());
    }

    #[test]
    fn positional_flags() {
        assert!(lookup("position").unwrap().positional);
        assert!(lookup("last").unwrap().positional);
        assert!(!lookup("count").unwrap().positional);
    }

    #[test]
    fn context_default_flags() {
        for f in [
            "string",
            "number",
            "string-length",
            "normalize-space",
            "name",
            "local-name",
        ] {
            assert!(lookup(f).unwrap().context_default, "{f}");
        }
        assert!(!lookup("boolean").unwrap().context_default);
    }
}
