//! Normalization (compiler phase 2/4 interplay, paper §3.3 and §4.3.2):
//! predicates are decomposed into conjunctions of clauses, and each clause
//! is classified for the translation:
//!
//! * `pos(p)`  — uses `position()` but not `last()`,
//! * `last(p)` — uses `last()`,
//! * nested paths (need `cn` rebinding, candidates for memoization),
//! * `cheap(p)` / `exp(p)` — a simple instruction-count cost model.

use crate::ast::Expr;

/// Classification flags of one predicate clause.
#[derive(Clone, Debug, PartialEq)]
pub struct Clause {
    /// The clause expression (a boolean-typed conjunct).
    pub expr: Expr,
    /// Calls `position()` in the current context.
    pub uses_position: bool,
    /// Calls `last()` in the current context.
    pub uses_last: bool,
    /// Contains a nested path evaluated from the current context node.
    pub has_nested_path: bool,
    /// Cost-model estimate (abstract instruction count).
    pub cost: u32,
    /// `cost > EXPENSIVE_THRESHOLD` or contains a nested path.
    pub expensive: bool,
}

/// A normalized predicate: the conjunction of its clauses.
#[derive(Clone, Debug, PartialEq)]
pub struct NormPredicate {
    /// Clauses in evaluation order (cheap first after sorting).
    pub clauses: Vec<Clause>,
    /// Any clause uses `position()` (or `last()`, which implies a
    /// position counter too).
    pub uses_position: bool,
    /// Any clause uses `last()`.
    pub uses_last: bool,
}

/// Clauses costing more than this (paper: "number of instructions
/// necessary to evaluate a clause") are classified expensive.
pub const EXPENSIVE_THRESHOLD: u32 = 12;

/// Abstract cost of evaluating `e` once: counts scalar operations; nested
/// paths count as expensive because their cardinality is unbounded.
pub fn cost(e: &Expr) -> u32 {
    match e {
        Expr::Or(a, b) | Expr::And(a, b) => 1 + cost(a) + cost(b),
        Expr::Compare(_, a, b) | Expr::Arith(_, a, b) => 1 + cost(a) + cost(b),
        Expr::Neg(a) => 1 + cost(a),
        Expr::Union(parts) => parts.iter().map(cost).sum::<u32>() + 5,
        // A path traversal: per-step axis scan. Weight each step heavily.
        Expr::Path(p) => {
            let start = match &p.start {
                crate::ast::PathStart::Expr(e) => cost(e),
                _ => 0,
            };
            start + 20 * p.steps.len().max(1) as u32
        }
        Expr::Filter(inner, preds) => {
            cost(inner) + preds.iter().map(|p| cost(&p.expr)).sum::<u32>()
        }
        Expr::Literal(_) | Expr::Number(_) | Expr::VarRef(_) => 1,
        Expr::FunctionCall(name, args) => {
            let base = match name.as_str() {
                "position" | "last" | "true" | "false" => 1,
                "count" | "sum" | "exists" | "id" => 10,
                "contains" | "starts-with" | "translate" | "normalize-space" => 4,
                _ => 2,
            };
            base + args.iter().map(cost).sum::<u32>()
        }
    }
}

fn classify(expr: Expr) -> Clause {
    let uses_position = expr.calls_any(&["position"]);
    let uses_last = expr.calls_any(&["last"]);
    let has_nested_path = expr.contains_path();
    let c = cost(&expr);
    Clause {
        expensive: has_nested_path || c > EXPENSIVE_THRESHOLD,
        cost: c,
        uses_position,
        uses_last,
        has_nested_path,
        expr,
    }
}

/// Split the top-level conjunction `l1 and l2 and …` into clauses.
fn split_conjuncts(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::And(a, b) => {
            split_conjuncts(*a, out);
            split_conjuncts(*b, out);
        }
        other => out.push(other),
    }
}

/// Normalize one (semantically analyzed) predicate expression.
///
/// Clause order: cheap clauses before expensive ones, and within the same
/// price class non-positional before positional (the translation wraps the
/// positional machinery around the cheap prefix — paper §4.3.2). Sorting
/// is stable, so the original order breaks ties (important for `and`
/// short-circuit observability, which XPath doesn't guarantee anyway).
pub fn normalize_predicate(e: Expr) -> NormPredicate {
    let mut conjuncts = Vec::new();
    split_conjuncts(e, &mut conjuncts);
    let mut clauses: Vec<Clause> = conjuncts.into_iter().map(classify).collect();
    clauses.sort_by_key(|c| (c.expensive, c.uses_last, c.uses_position, c.cost));
    NormPredicate {
        uses_position: clauses.iter().any(|c| c.uses_position || c.uses_last),
        uses_last: clauses.iter().any(|c| c.uses_last),
        clauses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::semantic::analyze;

    fn norm(pred_src: &str) -> NormPredicate {
        // Parse `a[<pred>]` and pull out the analyzed predicate.
        let e = analyze(parse(&format!("a[{pred_src}]")).unwrap()).unwrap();
        match e {
            Expr::Path(p) => normalize_predicate(p.steps[0].predicates[0].expr.clone()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn conjunction_split() {
        let n = norm("@x='1' and @y='2' and @z='3'");
        assert_eq!(n.clauses.len(), 3);
        assert!(!n.uses_position);
        assert!(!n.uses_last);
    }

    #[test]
    fn or_not_split() {
        let n = norm("@x='1' or @y='2'");
        assert_eq!(n.clauses.len(), 1);
    }

    #[test]
    fn position_detection() {
        let n = norm("position() = 2");
        assert!(n.uses_position);
        assert!(!n.uses_last);
        let n = norm("position() = last()");
        assert!(n.uses_position);
        assert!(n.uses_last);
        // Plain numeric predicate was rewritten to position()=n upstream.
        let n = norm("7");
        assert!(n.uses_position);
    }

    #[test]
    fn last_implies_position_counter() {
        let n = norm("last() > 3");
        assert!(n.uses_last);
        assert!(n.uses_position, "last() needs the cp counter too");
    }

    #[test]
    fn nested_position_not_counted() {
        // position() belongs to the inner path's context.
        let n = norm("b[position()=1]");
        assert!(!n.uses_position);
        assert!(n.clauses[0].has_nested_path);
    }

    #[test]
    fn nested_paths_are_expensive() {
        let n = norm("count(descendant::c/following::*) = 1000");
        assert!(n.clauses[0].expensive);
        assert!(n.clauses[0].has_nested_path);
        let n = norm("position() = 2");
        assert!(!n.clauses[0].expensive);
    }

    #[test]
    fn cheap_clauses_sorted_first() {
        let n = norm("count(b) = 4 and position() = 1");
        assert_eq!(n.clauses.len(), 2);
        assert!(!n.clauses[0].expensive, "cheap positional clause first");
        assert!(n.clauses[1].expensive);
    }

    #[test]
    fn stable_order_within_class() {
        let n = norm("@a='1' and @b='2'");
        // Both cheap, equal flags and cost: original order preserved.
        let texts: Vec<String> = n.clauses.iter().map(|c| c.expr.to_string()).collect();
        assert!(texts[0].contains("attribute::a"), "{texts:?}");
        assert!(texts[1].contains("attribute::b"), "{texts:?}");
    }

    #[test]
    fn cost_monotone_in_structure() {
        assert!(cost(&parse("a/b/c").unwrap()) > cost(&parse("a").unwrap()));
        assert!(cost(&parse("count(a)").unwrap()) > cost(&parse("position()").unwrap()));
    }
}
