//! Abstract syntax of XPath 1.0 expressions.
//!
//! The grammar follows the W3C recommendation; abbreviations (`//`, `.`,
//! `..`, `@`, bare predicates) are expanded by the parser, so the AST only
//! contains the unabbreviated forms.

use xmlstore::Axis;

/// Any XPath expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// `e1 or e2`
    Or(Box<Expr>, Box<Expr>),
    /// `e1 and e2`
    And(Box<Expr>, Box<Expr>),
    /// `e1 <op> e2` for the six comparison operators.
    Compare(CompOp, Box<Expr>, Box<Expr>),
    /// `e1 <op> e2` for `+ - * div mod`.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `π1 | π2 | …` (flattened).
    Union(Vec<Expr>),
    /// A location path or general path expression.
    Path(PathExpr),
    /// `primary[p1][p2]…` — a filter expression with at least one predicate.
    Filter(Box<Expr>, Vec<Predicate>),
    /// String literal.
    Literal(String),
    /// Numeric literal.
    Number(f64),
    /// `$name`
    VarRef(String),
    /// `name(arg, …)` — core library or conversion call.
    FunctionCall(String, Vec<Expr>),
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CompOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CompOp {
    /// Operator as written in XPath.
    pub fn symbol(self) -> &'static str {
        match self {
            CompOp::Eq => "=",
            CompOp::Ne => "!=",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        }
    }

    /// The operator with swapped operands (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CompOp {
        match self {
            CompOp::Eq => CompOp::Eq,
            CompOp::Ne => CompOp::Ne,
            CompOp::Lt => CompOp::Gt,
            CompOp::Le => CompOp::Ge,
            CompOp::Gt => CompOp::Lt,
            CompOp::Ge => CompOp::Le,
        }
    }

    /// Apply to two numbers (the base semantics after conversions).
    pub fn apply_numbers(self, a: f64, b: f64) -> bool {
        match self {
            CompOp::Eq => a == b,
            CompOp::Ne => a != b,
            CompOp::Lt => a < b,
            CompOp::Le => a <= b,
            CompOp::Gt => a > b,
            CompOp::Ge => a >= b,
        }
    }
}

/// Arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl ArithOp {
    /// Operator as written in XPath.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "div",
            ArithOp::Mod => "mod",
        }
    }

    /// Apply with XPath semantics (IEEE 754; `mod` is the remainder with
    /// the sign of the dividend, like Java/C, not Euclidean).
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => a / b,
            ArithOp::Mod => a % b,
        }
    }
}

/// Where a path starts.
#[derive(Clone, Debug, PartialEq)]
pub enum PathStart {
    /// Absolute path: starts at `root(cn)`.
    Root,
    /// Relative path: starts at the context node `cn`.
    ContextNode,
    /// General path expression `e/π`: starts at every node of `e`.
    Expr(Box<Expr>),
}

/// A location path (or general path expression).
#[derive(Clone, Debug, PartialEq)]
pub struct PathExpr {
    /// Starting point.
    pub start: PathStart,
    /// The location steps, possibly empty (`/` alone selects the root).
    pub steps: Vec<Step>,
}

/// One location step: axis, node test, predicates.
#[derive(Clone, Debug, PartialEq)]
pub struct Step {
    /// The axis.
    pub axis: Axis,
    /// The node test.
    pub node_test: NodeTest,
    /// Zero or more predicates, in syntactic order.
    pub predicates: Vec<Predicate>,
}

impl Step {
    /// Step without predicates.
    pub fn new(axis: Axis, node_test: NodeTest) -> Step {
        Step { axis, node_test, predicates: Vec::new() }
    }
}

/// Node tests.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeTest {
    /// `name` — matches the principal node kind with this name.
    Name(String),
    /// `*` — any node of the principal kind.
    Wildcard,
    /// `prefix:*` — any principal-kind node whose name starts with
    /// `prefix:` (names are kept verbatim, see xmlstore docs).
    NsWildcard(String),
    /// `node()`, `text()`, `comment()`, `processing-instruction(name?)`.
    Kind(KindTest),
}

/// Node-type tests.
#[derive(Clone, Debug, PartialEq)]
pub enum KindTest {
    /// `node()`
    Node,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction()` / `processing-instruction('target')`
    Pi(Option<String>),
}

/// A predicate expression `[e]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Predicate {
    /// The bracketed expression.
    pub expr: Expr,
}

impl Expr {
    /// Shallow helper: is this a path (location path or `e/π`)?
    pub fn is_path(&self) -> bool {
        matches!(self, Expr::Path(_))
    }

    /// Walk the expression tree top-down. `enter_predicates` controls
    /// whether the visitor descends into step/filter predicates (their
    /// contents run under a *different* evaluation context).
    pub fn visit(&self, enter_predicates: bool, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Or(a, b) | Expr::And(a, b) => {
                a.visit(enter_predicates, f);
                b.visit(enter_predicates, f);
            }
            Expr::Compare(_, a, b) | Expr::Arith(_, a, b) => {
                a.visit(enter_predicates, f);
                b.visit(enter_predicates, f);
            }
            Expr::Neg(a) => a.visit(enter_predicates, f),
            Expr::Union(es) => {
                for e in es {
                    e.visit(enter_predicates, f);
                }
            }
            Expr::Path(p) => {
                if let PathStart::Expr(e) = &p.start {
                    e.visit(enter_predicates, f);
                }
                if enter_predicates {
                    for s in &p.steps {
                        for pr in &s.predicates {
                            pr.expr.visit(enter_predicates, f);
                        }
                    }
                }
            }
            Expr::Filter(e, preds) => {
                e.visit(enter_predicates, f);
                if enter_predicates {
                    for pr in preds {
                        pr.expr.visit(enter_predicates, f);
                    }
                }
            }
            Expr::FunctionCall(_, args) => {
                for a in args {
                    a.visit(enter_predicates, f);
                }
            }
            Expr::Literal(_) | Expr::Number(_) | Expr::VarRef(_) => {}
        }
    }

    /// Does this expression (in the *current* context — predicates of
    /// nested paths excluded) call one of the given functions?
    pub fn calls_any(&self, names: &[&str]) -> bool {
        let mut found = false;
        self.visit(false, &mut |e| {
            if let Expr::FunctionCall(n, _) = e {
                if names.contains(&n.as_str()) {
                    found = true;
                }
            }
        });
        found
    }

    /// Does this expression contain a path sub-expression evaluated in the
    /// current context (i.e. outside any predicate)?
    pub fn contains_path(&self) -> bool {
        let mut found = false;
        self.visit(false, &mut |e| {
            if e.is_path() {
                found = true;
            }
        });
        found
    }
}

/// Render an expression back to XPath-like syntax (diagnostics, plan
/// explanations, tests).
impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Or(a, b) => write!(f, "({a} or {b})"),
            Expr::And(a, b) => write!(f, "({a} and {b})"),
            Expr::Compare(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Arith(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Neg(a) => write!(f, "(-{a})"),
            Expr::Union(es) => {
                let parts: Vec<String> = es.iter().map(|e| e.to_string()).collect();
                write!(f, "({})", parts.join(" | "))
            }
            Expr::Path(p) => write!(f, "{p}"),
            Expr::Filter(e, preds) => {
                write!(f, "({e})")?;
                for p in preds {
                    write!(f, "[{}]", p.expr)?;
                }
                Ok(())
            }
            Expr::Literal(s) => write!(f, "'{s}'"),
            Expr::Number(n) => write!(f, "{n}"),
            Expr::VarRef(v) => write!(f, "${v}"),
            Expr::FunctionCall(n, args) => {
                let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{n}({})", parts.join(", "))
            }
        }
    }
}

impl std::fmt::Display for PathExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.start {
            PathStart::Root => write!(f, "/")?,
            PathStart::ContextNode => {}
            PathStart::Expr(e) => write!(f, "{e}/")?,
        }
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}::{}", self.axis, self.node_test)?;
        for p in &self.predicates {
            write!(f, "[{}]", p.expr)?;
        }
        Ok(())
    }
}

impl std::fmt::Display for NodeTest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeTest::Name(n) => write!(f, "{n}"),
            NodeTest::Wildcard => write!(f, "*"),
            NodeTest::NsWildcard(p) => write!(f, "{p}:*"),
            NodeTest::Kind(KindTest::Node) => write!(f, "node()"),
            NodeTest::Kind(KindTest::Text) => write!(f, "text()"),
            NodeTest::Kind(KindTest::Comment) => write!(f, "comment()"),
            NodeTest::Kind(KindTest::Pi(None)) => write!(f, "processing-instruction()"),
            NodeTest::Kind(KindTest::Pi(Some(t))) => {
                write!(f, "processing-instruction('{t}')")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip_shape() {
        let e = Expr::Path(PathExpr {
            start: PathStart::Root,
            steps: vec![
                Step::new(Axis::Child, NodeTest::Name("a".into())),
                Step {
                    axis: Axis::Descendant,
                    node_test: NodeTest::Wildcard,
                    predicates: vec![Predicate {
                        expr: Expr::FunctionCall("position".into(), vec![]),
                    }],
                },
            ],
        });
        assert_eq!(e.to_string(), "/child::a/descendant::*[position()]");
    }

    #[test]
    fn calls_any_ignores_nested_predicates() {
        // position() only occurs inside a nested step predicate.
        let inner = Expr::Path(PathExpr {
            start: PathStart::ContextNode,
            steps: vec![Step {
                axis: Axis::Child,
                node_test: NodeTest::Name("x".into()),
                predicates: vec![Predicate { expr: Expr::FunctionCall("position".into(), vec![]) }],
            }],
        });
        assert!(!inner.calls_any(&["position"]));
        // ...but a top-level call is seen.
        let top = Expr::And(Box::new(inner), Box::new(Expr::FunctionCall("last".into(), vec![])));
        assert!(top.calls_any(&["last"]));
        assert!(!top.calls_any(&["position"]));
    }

    #[test]
    fn contains_path_sees_paths_not_in_predicates() {
        let p = Expr::Path(PathExpr { start: PathStart::ContextNode, steps: vec![] });
        assert!(p.contains_path());
        assert!(!Expr::Number(1.0).contains_path());
        let call = Expr::FunctionCall("count".into(), vec![p]);
        assert!(call.contains_path());
    }

    #[test]
    fn comp_op_flip() {
        assert_eq!(CompOp::Lt.flip(), CompOp::Gt);
        assert_eq!(CompOp::Le.flip(), CompOp::Ge);
        assert_eq!(CompOp::Eq.flip(), CompOp::Eq);
        assert!(CompOp::Le.apply_numbers(2.0, 2.0));
        assert!(!CompOp::Lt.apply_numbers(2.0, 2.0));
    }

    #[test]
    fn arith_mod_sign_follows_dividend() {
        assert_eq!(ArithOp::Mod.apply(5.0, 2.0), 1.0);
        assert_eq!(ArithOp::Mod.apply(5.0, -2.0), 1.0);
        assert_eq!(ArithOp::Mod.apply(-5.0, 2.0), -1.0);
        assert_eq!(ArithOp::Mod.apply(4.0, 2.0), 0.0);
    }
}
