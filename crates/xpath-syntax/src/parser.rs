//! Recursive-descent parser for the full XPath 1.0 grammar.
//!
//! Abbreviations are expanded during parsing:
//! * `//`  →  `/descendant-or-self::node()/`
//! * `.`   →  `self::node()`
//! * `..`  →  `parent::node()`
//! * `@n`  →  `attribute::n`
//! * `[e]` with no axis context stays a predicate.

use xmlstore::Axis;

use crate::ast::{ArithOp, CompOp, Expr, KindTest, NodeTest, PathExpr, PathStart, Predicate, Step};
use crate::lexer::{tokenize, LexError, Tok, Token};

/// Parse error (lexical or syntactic), with byte offset where known.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// Byte offset in the query string (`None` = end of input).
    pub offset: Option<usize>,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.offset {
            Some(o) => write!(f, "XPath parse error at offset {o}: {}", self.message),
            None => write!(f, "XPath parse error at end of input: {}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.message, offset: Some(e.offset) }
    }
}

/// Parse a complete XPath 1.0 expression.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.or_expr()?;
    if let Some(t) = p.peek() {
        return Err(ParseError {
            message: format!("unexpected trailing token `{}`", t.kind),
            offset: Some(t.offset),
        });
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kind(&self) -> Option<&Tok> {
        self.peek().map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &Tok) -> bool {
        if self.peek_kind() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &Tok) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected `{kind}`")))
        }
    }

    fn err_here(&self, message: String) -> ParseError {
        ParseError { message, offset: self.peek().map(|t| t.offset) }
    }

    // OrExpr ::= AndExpr ('or' AndExpr)*
    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and_expr()?;
        while self.eat(&Tok::Or) {
            let rhs = self.and_expr()?;
            e = Expr::Or(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.equality_expr()?;
        while self.eat(&Tok::And) {
            let rhs = self.equality_expr()?;
            e = Expr::And(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn equality_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.relational_expr()?;
        loop {
            let op = match self.peek_kind() {
                Some(Tok::Eq) => CompOp::Eq,
                Some(Tok::Ne) => CompOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.relational_expr()?;
            e = Expr::Compare(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn relational_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.additive_expr()?;
        loop {
            let op = match self.peek_kind() {
                Some(Tok::Lt) => CompOp::Lt,
                Some(Tok::Le) => CompOp::Le,
                Some(Tok::Gt) => CompOp::Gt,
                Some(Tok::Ge) => CompOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.additive_expr()?;
            e = Expr::Compare(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn additive_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative_expr()?;
        loop {
            let op = match self.peek_kind() {
                Some(Tok::Plus) => ArithOp::Add,
                Some(Tok::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative_expr()?;
            e = Expr::Arith(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn multiplicative_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek_kind() {
                Some(Tok::Multiply) => ArithOp::Mul,
                Some(Tok::Div) => ArithOp::Div,
                Some(Tok::Mod) => ArithOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            e = Expr::Arith(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Minus) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.union_expr()
    }

    fn union_expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.path_expr()?;
        if self.peek_kind() != Some(&Tok::Pipe) {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.eat(&Tok::Pipe) {
            parts.push(self.path_expr()?);
        }
        Ok(Expr::Union(parts))
    }

    /// True if the upcoming tokens start a location path rather than a
    /// filter (primary) expression.
    fn at_location_path(&self) -> bool {
        match self.peek_kind() {
            Some(
                Tok::Slash
                | Tok::DoubleSlash
                | Tok::Dot
                | Tok::DotDot
                | Tok::At
                | Tok::Star
                | Tok::Name(_)
                | Tok::NsWildcard(_)
                | Tok::AxisName(_),
            ) => true,
            Some(Tok::FuncName(n)) => {
                matches!(n.as_str(), "node" | "text" | "comment" | "processing-instruction")
            }
            _ => false,
        }
    }

    // PathExpr ::= LocationPath
    //            | FilterExpr (('/'|'//') RelativeLocationPath)?
    fn path_expr(&mut self) -> Result<Expr, ParseError> {
        if self.at_location_path() {
            return self.location_path();
        }
        let filter = self.filter_expr()?;
        match self.peek_kind() {
            Some(Tok::Slash) => {
                self.bump();
                let mut steps = Vec::new();
                self.relative_location_path(&mut steps)?;
                Ok(Expr::Path(PathExpr { start: PathStart::Expr(Box::new(filter)), steps }))
            }
            Some(Tok::DoubleSlash) => {
                self.bump();
                let mut steps = vec![Step::new(
                    Axis::DescendantOrSelf,
                    NodeTest::Kind(KindTest::Node),
                )];
                self.relative_location_path(&mut steps)?;
                Ok(Expr::Path(PathExpr { start: PathStart::Expr(Box::new(filter)), steps }))
            }
            _ => Ok(filter),
        }
    }

    // FilterExpr ::= PrimaryExpr Predicate*
    fn filter_expr(&mut self) -> Result<Expr, ParseError> {
        let primary = self.primary_expr()?;
        let mut preds = Vec::new();
        while self.peek_kind() == Some(&Tok::LBracket) {
            self.bump();
            let e = self.or_expr()?;
            self.expect(&Tok::RBracket)?;
            preds.push(Predicate { expr: e });
        }
        if preds.is_empty() {
            Ok(primary)
        } else {
            Ok(Expr::Filter(Box::new(primary), preds))
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let t = self
            .bump()
            .ok_or(ParseError { message: "unexpected end of expression".into(), offset: None })?;
        match t.kind {
            Tok::Var(name) => Ok(Expr::VarRef(name)),
            Tok::LParen => {
                let e = self.or_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Literal(s) => Ok(Expr::Literal(s)),
            Tok::Number(n) => Ok(Expr::Number(n)),
            Tok::FuncName(name) => {
                self.expect(&Tok::LParen)?;
                let mut args = Vec::new();
                if self.peek_kind() != Some(&Tok::RParen) {
                    loop {
                        args.push(self.or_expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen)?;
                Ok(Expr::FunctionCall(name, args))
            }
            other => Err(ParseError {
                message: format!("unexpected token `{other}` in expression"),
                offset: Some(t.offset),
            }),
        }
    }

    // LocationPath ::= RelativeLocationPath | AbsoluteLocationPath
    fn location_path(&mut self) -> Result<Expr, ParseError> {
        match self.peek_kind() {
            Some(Tok::Slash) => {
                self.bump();
                let mut steps = Vec::new();
                if self.at_step() {
                    self.relative_location_path(&mut steps)?;
                }
                Ok(Expr::Path(PathExpr { start: PathStart::Root, steps }))
            }
            Some(Tok::DoubleSlash) => {
                self.bump();
                let mut steps = vec![Step::new(
                    Axis::DescendantOrSelf,
                    NodeTest::Kind(KindTest::Node),
                )];
                self.relative_location_path(&mut steps)?;
                Ok(Expr::Path(PathExpr { start: PathStart::Root, steps }))
            }
            _ => {
                let mut steps = Vec::new();
                self.relative_location_path(&mut steps)?;
                Ok(Expr::Path(PathExpr { start: PathStart::ContextNode, steps }))
            }
        }
    }

    fn at_step(&self) -> bool {
        match self.peek_kind() {
            Some(
                Tok::Dot
                | Tok::DotDot
                | Tok::At
                | Tok::Star
                | Tok::Name(_)
                | Tok::NsWildcard(_)
                | Tok::AxisName(_),
            ) => true,
            Some(Tok::FuncName(n)) => {
                matches!(n.as_str(), "node" | "text" | "comment" | "processing-instruction")
            }
            _ => false,
        }
    }

    // RelativeLocationPath ::= Step (('/'|'//') Step)*
    fn relative_location_path(&mut self, steps: &mut Vec<Step>) -> Result<(), ParseError> {
        loop {
            steps.push(self.step()?);
            match self.peek_kind() {
                Some(Tok::Slash) => {
                    self.bump();
                }
                Some(Tok::DoubleSlash) => {
                    self.bump();
                    steps.push(Step::new(Axis::DescendantOrSelf, NodeTest::Kind(KindTest::Node)));
                }
                _ => return Ok(()),
            }
        }
    }

    // Step ::= '.' | '..' | AxisSpecifier NodeTest Predicate*
    fn step(&mut self) -> Result<Step, ParseError> {
        if self.eat(&Tok::Dot) {
            return Ok(Step::new(Axis::SelfAxis, NodeTest::Kind(KindTest::Node)));
        }
        if self.eat(&Tok::DotDot) {
            return Ok(Step::new(Axis::Parent, NodeTest::Kind(KindTest::Node)));
        }
        let axis = if self.eat(&Tok::At) {
            Axis::Attribute
        } else if let Some(Tok::AxisName(name)) = self.peek_kind() {
            let name = name.clone();
            let axis = Axis::from_name(&name)
                .ok_or_else(|| self.err_here(format!("unknown axis `{name}`")))?;
            self.bump();
            self.expect(&Tok::ColonColon)?;
            axis
        } else {
            Axis::Child
        };
        let node_test = self.node_test()?;
        let mut predicates = Vec::new();
        while self.peek_kind() == Some(&Tok::LBracket) {
            self.bump();
            let e = self.or_expr()?;
            self.expect(&Tok::RBracket)?;
            predicates.push(Predicate { expr: e });
        }
        Ok(Step { axis, node_test, predicates })
    }

    fn node_test(&mut self) -> Result<NodeTest, ParseError> {
        let t = self
            .bump()
            .ok_or(ParseError { message: "expected a node test".into(), offset: None })?;
        match t.kind {
            Tok::Star => Ok(NodeTest::Wildcard),
            Tok::Name(n) | Tok::AxisName(n) => Ok(NodeTest::Name(n)),
            Tok::NsWildcard(p) => Ok(NodeTest::NsWildcard(p)),
            Tok::FuncName(n) => {
                self.expect(&Tok::LParen)?;
                let test = match n.as_str() {
                    "node" => NodeTest::Kind(KindTest::Node),
                    "text" => NodeTest::Kind(KindTest::Text),
                    "comment" => NodeTest::Kind(KindTest::Comment),
                    "processing-instruction" => {
                        if let Some(Tok::Literal(target)) = self.peek_kind() {
                            let target = target.clone();
                            self.bump();
                            NodeTest::Kind(KindTest::Pi(Some(target)))
                        } else {
                            NodeTest::Kind(KindTest::Pi(None))
                        }
                    }
                    other => {
                        return Err(ParseError {
                            message: format!("`{other}(` is not a node test"),
                            offset: Some(t.offset),
                        })
                    }
                };
                self.expect(&Tok::RParen)?;
                Ok(test)
            }
            other => Err(ParseError {
                message: format!("expected a node test, found `{other}`"),
                offset: Some(t.offset),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Expr {
        parse(src).unwrap_or_else(|e| panic!("parse `{src}`: {e}"))
    }

    #[test]
    fn absolute_and_relative_paths() {
        match p("/a/b") {
            Expr::Path(path) => {
                assert_eq!(path.start, PathStart::Root);
                assert_eq!(path.steps.len(), 2);
                assert_eq!(path.steps[0].axis, Axis::Child);
                assert_eq!(path.steps[0].node_test, NodeTest::Name("a".into()));
            }
            other => panic!("{other:?}"),
        }
        match p("a") {
            Expr::Path(path) => assert_eq!(path.start, PathStart::ContextNode),
            other => panic!("{other:?}"),
        }
        // `/` alone: root, no steps.
        match p("/") {
            Expr::Path(path) => {
                assert_eq!(path.start, PathStart::Root);
                assert!(path.steps.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn abbreviations_expand() {
        match p("//a") {
            Expr::Path(path) => {
                assert_eq!(path.steps.len(), 2);
                assert_eq!(path.steps[0].axis, Axis::DescendantOrSelf);
                assert_eq!(path.steps[0].node_test, NodeTest::Kind(KindTest::Node));
                assert_eq!(path.steps[1].axis, Axis::Child);
            }
            other => panic!("{other:?}"),
        }
        match p("../@id") {
            Expr::Path(path) => {
                assert_eq!(path.steps[0].axis, Axis::Parent);
                assert_eq!(path.steps[1].axis, Axis::Attribute);
                assert_eq!(path.steps[1].node_test, NodeTest::Name("id".into()));
            }
            other => panic!("{other:?}"),
        }
        match p(".") {
            Expr::Path(path) => {
                assert_eq!(path.steps[0].axis, Axis::SelfAxis);
                assert_eq!(path.steps[0].node_test, NodeTest::Kind(KindTest::Node));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn full_axes() {
        for (src, axis) in [
            ("ancestor::a", Axis::Ancestor),
            ("ancestor-or-self::a", Axis::AncestorOrSelf),
            ("descendant-or-self::a", Axis::DescendantOrSelf),
            ("following::a", Axis::Following),
            ("following-sibling::a", Axis::FollowingSibling),
            ("preceding::a", Axis::Preceding),
            ("preceding-sibling::a", Axis::PrecedingSibling),
            ("self::a", Axis::SelfAxis),
            ("namespace::a", Axis::Namespace),
        ] {
            match p(src) {
                Expr::Path(path) => assert_eq!(path.steps[0].axis, axis, "{src}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn predicates_parse() {
        match p("a[1][@id='x']") {
            Expr::Path(path) => {
                let preds = &path.steps[0].predicates;
                assert_eq!(preds.len(), 2);
                assert_eq!(preds[0].expr, Expr::Number(1.0));
                match &preds[1].expr {
                    Expr::Compare(CompOp::Eq, lhs, rhs) => {
                        assert!(matches!(**lhs, Expr::Path(_)));
                        assert_eq!(**rhs, Expr::Literal("x".into()));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        // or < and < equality < relational < additive < multiplicative < unary
        match p("1 or 2 and 3") {
            Expr::Or(_, rhs) => assert!(matches!(*rhs, Expr::And(_, _))),
            other => panic!("{other:?}"),
        }
        match p("1 = 2 < 3") {
            Expr::Compare(CompOp::Eq, _, rhs) => {
                assert!(matches!(*rhs, Expr::Compare(CompOp::Lt, _, _)))
            }
            other => panic!("{other:?}"),
        }
        match p("1 + 2 * 3") {
            Expr::Arith(ArithOp::Add, _, rhs) => {
                assert!(matches!(*rhs, Expr::Arith(ArithOp::Mul, _, _)))
            }
            other => panic!("{other:?}"),
        }
        match p("-a = b") {
            Expr::Compare(CompOp::Eq, lhs, _) => assert!(matches!(*lhs, Expr::Neg(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn union_flattened_left_to_right() {
        match p("a | b | c") {
            Expr::Union(parts) => assert_eq!(parts.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn function_calls() {
        match p("count(a) + sum(b/c)") {
            Expr::Arith(ArithOp::Add, lhs, _) => match *lhs {
                Expr::FunctionCall(ref n, ref args) => {
                    assert_eq!(n, "count");
                    assert_eq!(args.len(), 1);
                }
                ref other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        match p("concat('a', 'b', 'c')") {
            Expr::FunctionCall(n, args) => {
                assert_eq!(n, "concat");
                assert_eq!(args.len(), 3);
            }
            other => panic!("{other:?}"),
        }
        match p("true()") {
            Expr::FunctionCall(n, args) => {
                assert_eq!(n, "true");
                assert!(args.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn filter_expressions() {
        match p("(a | b)[1]") {
            Expr::Filter(inner, preds) => {
                assert!(matches!(*inner, Expr::Union(_)));
                assert_eq!(preds.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        // Filter followed by a path.
        match p("id('x')/child::a") {
            Expr::Path(path) => {
                assert!(matches!(path.start, PathStart::Expr(_)));
                assert_eq!(path.steps.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        // Filter followed by //.
        match p("$v//a") {
            Expr::Path(path) => {
                assert!(matches!(path.start, PathStart::Expr(_)));
                assert_eq!(path.steps.len(), 2);
                assert_eq!(path.steps[0].axis, Axis::DescendantOrSelf);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn node_type_tests() {
        match p("text()") {
            Expr::Path(path) => {
                assert_eq!(path.steps[0].node_test, NodeTest::Kind(KindTest::Text))
            }
            other => panic!("{other:?}"),
        }
        match p("processing-instruction('php')") {
            Expr::Path(path) => assert_eq!(
                path.steps[0].node_test,
                NodeTest::Kind(KindTest::Pi(Some("php".into())))
            ),
            other => panic!("{other:?}"),
        }
        match p("comment() | node()") {
            Expr::Union(parts) => assert_eq!(parts.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn paper_fig5_queries_parse() {
        for q in [
            "/child::xdoc/descendant::*/ancestor::*/descendant::*/attribute::id",
            "/child::xdoc/descendant::*/preceding-sibling::*/following::*/attribute::id",
            "/child::xdoc/descendant::*/ancestor::*/ancestor::*/attribute::id",
            "/child::xdoc/child::*/parent::*/descendant::*/attribute::id",
        ] {
            p(q);
        }
    }

    #[test]
    fn paper_fig10_queries_parse() {
        for q in [
            "/dblp/article/title",
            "/dblp/*/title",
            "/dblp/article[position() = 3]/title",
            "/dblp/article[position() < 100]/title",
            "/dblp/article[position() = last()]/title",
            "/dblp/article[position()=last()-10]/title",
            "/dblp/article/title | /dblp/inproceedings/title",
            "/dblp/article[count(author)=4]/@key",
            "/dblp/article[year='1991']/@key",
            "/dblp/inproceedings[year='1991']/@key",
            "/dblp/*[author='Guido Moerkotte']/@key",
            "/dblp/inproceedings[@key='conf/er/LockemannM91']/title",
            "/dblp/inproceedings[author='Guido Moerkotte'][position()=last()]/title",
        ] {
            p(q);
        }
    }

    #[test]
    fn error_cases() {
        assert!(parse("").is_err());
        assert!(parse("/a/").is_err());
        assert!(parse("a[").is_err());
        assert!(parse("a]").is_err());
        assert!(parse("count(").is_err());
        assert!(parse("a b").is_err());
        assert!(parse("sideways::a").is_err());
        assert!(parse("1 +").is_err());
        assert!(parse("()").is_err());
    }

    #[test]
    fn double_slash_inside_path() {
        match p("a//b") {
            Expr::Path(path) => {
                assert_eq!(path.steps.len(), 3);
                assert_eq!(path.steps[1].axis, Axis::DescendantOrSelf);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn display_parse_fixpoint() {
        // Rendering an AST and re-parsing it must reach a fixpoint.
        for q in [
            "/a/b[2]/c[@x='1']",
            "//a[b and not(c)] | /d",
            "count(/a/b) + sum(//c) * 2",
            "(//a)[last()]/ancestor-or-self::*[position() mod 2 = 1]",
            "id('x y')/@id",
            "substring(concat('a', string(/r)), 2, 3)",
            "processing-instruction('t') | comment() | text()",
        ] {
            let once = parse(q).unwrap();
            let rendered = once.to_string();
            let twice =
                parse(&rendered).unwrap_or_else(|e| panic!("re-parse of `{rendered}`: {e}"));
            assert_eq!(once, twice, "{q}");
        }
    }

    #[test]
    fn nested_predicates() {
        let e = p("a[b[c=1]/d]");
        // structure: path a with predicate path b[...]/d
        match e {
            Expr::Path(path) => {
                let pred = &path.steps[0].predicates[0].expr;
                match pred {
                    Expr::Path(inner) => {
                        assert_eq!(inner.steps.len(), 2);
                        assert_eq!(inner.steps[0].predicates.len(), 1);
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }
}
