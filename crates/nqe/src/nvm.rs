//! The Natix Virtual Machine (paper §5.2.2): a register bytecode that
//! evaluates the non-sequence-valued subscripts of the physical operators.
//!
//! Scalar expressions compile to small programs; nested sequence-valued
//! sub-plans (aggregations, paper §5.2.3) are reached through the
//! `EvalNested` command, which pulls a nested iterator and aggregates its
//! tuples — with premature termination for `exists()` ("smart
//! aggregation", §5.2.5).

use xmlstore::{Axis, AxisCursor, NodeKind};
use xpath_syntax::xvalue;
use xpath_syntax::{ArithOp, CompOp};

use algebra::attrmgr::Slot;
use algebra::scalar::{CmpMode, NodeFn, NumFn, StrFn};
use algebra::{Const, Tuple, Value};

use crate::exec::Runtime;
use crate::iter::NestedEval;

/// Register index.
pub type Reg = usize;

/// NVM instructions.
#[derive(Clone, Debug)]
pub enum Instr {
    /// `dst ← const`
    LoadConst { dst: Reg, value: Const },
    /// `dst ← tuple[slot]`
    LoadSlot { dst: Reg, slot: Slot },
    /// `dst ← vars[name]` (Null if unbound).
    LoadVar { dst: Reg, name: String },
    /// `dst ← a <op> b` (numeric).
    Arith {
        op: ArithOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// `dst ← -a`
    Neg { dst: Reg, a: Reg },
    /// `dst ← a <op> b` under the given comparison mode.
    Cmp {
        op: CompOp,
        mode: CmpMode,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// `dst ← not a`
    Not { dst: Reg, a: Reg },
    /// `dst ← number(a)`
    ToNumber { dst: Reg, a: Reg },
    /// `dst ← string(a)`
    ToString { dst: Reg, a: Reg },
    /// `dst ← boolean(a)`
    ToBoolean { dst: Reg, a: Reg },
    /// String function over argument registers.
    StrOp { f: StrFn, dst: Reg, args: Vec<Reg> },
    /// Numeric function.
    NumOp { f: NumFn, dst: Reg, a: Reg },
    /// Node function (name / local-name / namespace-uri).
    NodeOp { f: NodeFn, dst: Reg, a: Reg },
    /// `dst ← lang(a)` relative to the node in `ctx` (a tuple slot).
    Lang { dst: Reg, a: Reg, ctx: Slot },
    /// `dst ← deref(a)` — element with ID `string(a)`, Null if absent.
    Deref { dst: Reg, a: Reg },
    /// `dst ← root(a)` — the document node.
    RootOf { dst: Reg, a: Reg },
    /// Copy a register.
    Move { dst: Reg, src: Reg },
    /// Skip to `target` if `boolean(cond)` is true (short-circuit `or`).
    JumpIfTrue { cond: Reg, target: usize },
    /// Skip to `target` if `boolean(cond)` is false (short-circuit `and`).
    JumpIfFalse { cond: Reg, target: usize },
    /// `dst ← aggregate(nested[idx])` seeded with the current tuple.
    EvalNested { dst: Reg, idx: usize },
}

/// A compiled NVM program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Instruction stream.
    pub instrs: Vec<Instr>,
    /// Register count.
    pub nregs: usize,
    /// Register holding the final value.
    pub result: Reg,
}

/// Run a program against `tuple`. `nested` supplies the nested iterator
/// plans referenced by `EvalNested`.
pub fn run(prog: &Program, rt: &Runtime<'_>, tuple: &Tuple, nested: &mut [NestedEval]) -> Value {
    let mut regs: Vec<Value> = vec![Value::Null; prog.nregs];
    let store = rt.store;
    let mut pc = 0usize;
    while pc < prog.instrs.len() {
        match &prog.instrs[pc] {
            Instr::LoadConst { dst, value } => regs[*dst] = value.to_value(),
            Instr::LoadSlot { dst, slot } => {
                regs[*dst] = tuple.get(*slot).cloned().unwrap_or(Value::Null)
            }
            Instr::LoadVar { dst, name } => {
                regs[*dst] = rt.vars.get(name).cloned().unwrap_or(Value::Null)
            }
            Instr::Arith { op, dst, a, b } => {
                let x = regs[*a].to_num(store);
                let y = regs[*b].to_num(store);
                regs[*dst] = Value::Num(op.apply(x, y));
            }
            Instr::Neg { dst, a } => regs[*dst] = Value::Num(-regs[*a].to_num(store)),
            Instr::Cmp { op, mode, dst, a, b } => {
                regs[*dst] = Value::Bool(compare(*op, *mode, &regs[*a], &regs[*b], rt));
            }
            Instr::Not { dst, a } => regs[*dst] = Value::Bool(!regs[*a].to_bool()),
            Instr::ToNumber { dst, a } => regs[*dst] = Value::Num(regs[*a].to_num(store)),
            Instr::ToString { dst, a } => regs[*dst] = Value::Str(regs[*a].to_str(store).into()),
            Instr::ToBoolean { dst, a } => regs[*dst] = Value::Bool(regs[*a].to_bool()),
            Instr::StrOp { f, dst, args } => {
                regs[*dst] = str_op(*f, args, &regs, rt);
            }
            Instr::NumOp { f, dst, a } => {
                let x = regs[*a].to_num(store);
                regs[*dst] = Value::Num(match f {
                    NumFn::Floor => x.floor(),
                    NumFn::Ceiling => x.ceil(),
                    NumFn::Round => xvalue::xpath_round(x),
                });
            }
            Instr::NodeOp { f, dst, a } => {
                regs[*dst] = Value::Str(
                    match (&regs[*a], f) {
                        (Value::Node(n), NodeFn::Name | NodeFn::LocalName) => store.node_name(*n),
                        // Names are stored verbatim (no namespace expansion).
                        (Value::Node(_), NodeFn::NamespaceUri) => String::new(),
                        _ => String::new(),
                    }
                    .into(),
                );
            }
            Instr::Lang { dst, a, ctx } => {
                let lang = regs[*a].to_str(store);
                let node = tuple.get(*ctx).and_then(|v| v.as_node());
                regs[*dst] = Value::Bool(match node {
                    Some(n) => lang_matches(rt, n, &lang),
                    None => false,
                });
            }
            Instr::Deref { dst, a } => {
                let id = regs[*a].to_str(store);
                regs[*dst] = match store.element_by_id(&id) {
                    Some(n) => Value::Node(n),
                    None => Value::Null,
                };
            }
            Instr::RootOf { dst, a } => {
                // Single-document stores: the root is store.root()
                // regardless of the operand (which only anchors the
                // document in a multi-document setting).
                let _ = a;
                regs[*dst] = Value::Node(store.root());
            }
            Instr::Move { dst, src } => regs[*dst] = regs[*src].clone(),
            Instr::JumpIfTrue { cond, target } => {
                if regs[*cond].to_bool() {
                    pc = *target;
                    continue;
                }
            }
            Instr::JumpIfFalse { cond, target } => {
                if !regs[*cond].to_bool() {
                    pc = *target;
                    continue;
                }
            }
            Instr::EvalNested { dst, idx } => {
                regs[*dst] = nested[*idx].evaluate(rt, tuple);
            }
        }
        pc += 1;
    }
    std::mem::replace(&mut regs[prog.result], Value::Null)
}

fn compare(op: CompOp, mode: CmpMode, a: &Value, b: &Value, rt: &Runtime<'_>) -> bool {
    let store = rt.store;
    let mode = if mode == CmpMode::Dyn {
        // Runtime dispatch (variables of unknown type): booleans win,
        // then numbers, then strings — mirroring XPath §3.4.
        match (a, b) {
            (Value::Bool(_), _) | (_, Value::Bool(_)) => CmpMode::Bool,
            (Value::Num(_), _) | (_, Value::Num(_)) => CmpMode::Num,
            _ => {
                if matches!(op, CompOp::Eq | CompOp::Ne) {
                    CmpMode::Str
                } else {
                    CmpMode::Num
                }
            }
        }
    } else {
        mode
    };
    match mode {
        CmpMode::Num => op.apply_numbers(a.to_num(store), b.to_num(store)),
        CmpMode::Bool => {
            let (x, y) = (a.to_bool(), b.to_bool());
            match op {
                CompOp::Eq => x == y,
                CompOp::Ne => x != y,
                // Relational on booleans goes through numbers (XPath §3.4).
                _ => op.apply_numbers(x as u8 as f64, y as u8 as f64),
            }
        }
        CmpMode::Str => {
            let (x, y) = (a.to_str(store), b.to_str(store));
            match op {
                CompOp::Eq => x == y,
                CompOp::Ne => x != y,
                _ => op.apply_numbers(xvalue::string_to_number(&x), xvalue::string_to_number(&y)),
            }
        }
        CmpMode::Dyn => unreachable!("Dyn resolved above"),
    }
}

fn str_op(f: StrFn, args: &[Reg], regs: &[Value], rt: &Runtime<'_>) -> Value {
    let store = rt.store;
    let s = |i: usize| regs[args[i]].to_str(store);
    match f {
        StrFn::Concat => {
            let mut out = String::new();
            for &r in args {
                out.push_str(&regs[r].to_str(store));
            }
            Value::Str(out.into())
        }
        StrFn::Contains => Value::Bool(s(0).contains(&s(1))),
        StrFn::StartsWith => Value::Bool(s(0).starts_with(&s(1))),
        StrFn::SubstringBefore => Value::Str(xvalue::substring_before(&s(0), &s(1)).into()),
        StrFn::SubstringAfter => Value::Str(xvalue::substring_after(&s(0), &s(1)).into()),
        StrFn::Substring => {
            let start = regs[args[1]].to_num(store);
            let len = args.get(2).map(|&r| regs[r].to_num(store));
            Value::Str(xvalue::xpath_substring(&s(0), start, len).into())
        }
        StrFn::StringLength => Value::Num(xvalue::string_length(&s(0))),
        StrFn::NormalizeSpace => Value::Str(xvalue::normalize_space(&s(0)).into()),
        StrFn::Translate => Value::Str(xvalue::translate(&s(0), &s(1), &s(2)).into()),
    }
}

/// `lang()` per XPath §4.3: the nearest `xml:lang` on ancestor-or-self,
/// case-insensitive, allowing a suffix after `-`.
fn lang_matches(rt: &Runtime<'_>, node: xmlstore::NodeId, want: &str) -> bool {
    let store = rt.store;
    let mut cursor = AxisCursor::new(store, Axis::AncestorOrSelf, node);
    while let Some(n) = cursor.advance(store) {
        if store.kind(n) != NodeKind::Element {
            continue;
        }
        if let Some(v) = store.attribute_value(n, "xml:lang") {
            let v = v.to_ascii_lowercase();
            let want = want.to_ascii_lowercase();
            return v == want
                || (v.starts_with(&want) && v.as_bytes().get(want.len()) == Some(&b'-'));
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use xmlstore::{parse_document, XmlStore};

    fn rt_fixture() -> (xmlstore::ArenaStore, HashMap<String, Value>) {
        (
            parse_document(r#"<a xml:lang="en-US"><b id="k1">7</b></a>"#).unwrap(),
            HashMap::new(),
        )
    }

    #[test]
    fn basic_arith_program() {
        let (store, vars) = rt_fixture();
        let gov = crate::governor::ResourceGovernor::unlimited();
        let rt = Runtime { store: &store, vars: &vars, gov: &gov };
        let prog = Program {
            instrs: vec![
                Instr::LoadConst { dst: 0, value: Const::Num(4.0) },
                Instr::LoadConst { dst: 1, value: Const::Num(38.0) },
                Instr::Arith { op: ArithOp::Add, dst: 2, a: 0, b: 1 },
            ],
            nregs: 3,
            result: 2,
        };
        let v = run(&prog, &rt, &vec![], &mut []);
        assert!(matches!(v, Value::Num(n) if n == 42.0));
    }

    #[test]
    fn slot_load_and_compare() {
        let (store, vars) = rt_fixture();
        let gov = crate::governor::ResourceGovernor::unlimited();
        let rt = Runtime { store: &store, vars: &vars, gov: &gov };
        let b = {
            let a = store.first_child(store.root()).unwrap();
            store.first_child(a).unwrap()
        };
        let tuple = vec![Value::Node(b)];
        let prog = Program {
            instrs: vec![
                Instr::LoadSlot { dst: 0, slot: 0 },
                Instr::ToNumber { dst: 1, a: 0 },
                Instr::LoadConst { dst: 2, value: Const::Num(7.0) },
                Instr::Cmp { op: CompOp::Eq, mode: CmpMode::Num, dst: 3, a: 1, b: 2 },
            ],
            nregs: 4,
            result: 3,
        };
        let v = run(&prog, &rt, &tuple, &mut []);
        assert!(matches!(v, Value::Bool(true)));
    }

    #[test]
    fn deref_finds_elements_by_id() {
        let (store, vars) = rt_fixture();
        let gov = crate::governor::ResourceGovernor::unlimited();
        let rt = Runtime { store: &store, vars: &vars, gov: &gov };
        let prog = Program {
            instrs: vec![
                Instr::LoadConst { dst: 0, value: Const::Str("k1".into()) },
                Instr::Deref { dst: 1, a: 0 },
            ],
            nregs: 2,
            result: 1,
        };
        match run(&prog, &rt, &vec![], &mut []) {
            Value::Node(n) => assert_eq!(store.node_name(n), "b"),
            other => panic!("{other:?}"),
        }
        let prog_missing = Program {
            instrs: vec![
                Instr::LoadConst { dst: 0, value: Const::Str("zzz".into()) },
                Instr::Deref { dst: 1, a: 0 },
            ],
            nregs: 2,
            result: 1,
        };
        assert!(run(&prog_missing, &rt, &vec![], &mut []).is_null());
    }

    #[test]
    fn lang_checks_ancestors() {
        let (store, vars) = rt_fixture();
        let gov = crate::governor::ResourceGovernor::unlimited();
        let rt = Runtime { store: &store, vars: &vars, gov: &gov };
        let b = {
            let a = store.first_child(store.root()).unwrap();
            store.first_child(a).unwrap()
        };
        let tuple = vec![Value::Node(b)];
        for (lang, expect) in [("en", true), ("en-us", true), ("EN", true), ("de", false)] {
            let prog = Program {
                instrs: vec![
                    Instr::LoadConst { dst: 0, value: Const::Str(lang.into()) },
                    Instr::Lang { dst: 1, a: 0, ctx: 0 },
                ],
                nregs: 2,
                result: 1,
            };
            assert!(
                matches!(run(&prog, &rt, &tuple, &mut []), Value::Bool(b) if b == expect),
                "lang({lang})"
            );
        }
    }

    #[test]
    fn dyn_compare_dispatches_on_runtime_types() {
        let (store, vars) = rt_fixture();
        let gov = crate::governor::ResourceGovernor::unlimited();
        let rt = Runtime { store: &store, vars: &vars, gov: &gov };
        let cmp = |a: Value, b: Value, op: CompOp| {
            let prog = Program {
                instrs: vec![Instr::Cmp { op, mode: CmpMode::Dyn, dst: 2, a: 0, b: 1 }],
                nregs: 3,
                result: 2,
            };
            let tuple = vec![];
            let mut regs_in = prog.clone();
            // Pre-load via constants: rebuild with loads.
            regs_in.instrs = vec![
                match &a {
                    Value::Bool(x) => Instr::LoadConst { dst: 0, value: Const::Bool(*x) },
                    Value::Num(x) => Instr::LoadConst { dst: 0, value: Const::Num(*x) },
                    Value::Str(x) => Instr::LoadConst { dst: 0, value: Const::Str(x.to_string()) },
                    _ => unreachable!(),
                },
                match &b {
                    Value::Bool(x) => Instr::LoadConst { dst: 1, value: Const::Bool(*x) },
                    Value::Num(x) => Instr::LoadConst { dst: 1, value: Const::Num(*x) },
                    Value::Str(x) => Instr::LoadConst { dst: 1, value: Const::Str(x.to_string()) },
                    _ => unreachable!(),
                },
                Instr::Cmp { op, mode: CmpMode::Dyn, dst: 2, a: 0, b: 1 },
            ];
            matches!(run(&regs_in, &rt, &tuple, &mut []), Value::Bool(true))
        };
        // bool beats number: true = 1 → boolean(1)=true.
        assert!(cmp(Value::Bool(true), Value::Num(1.0), CompOp::Eq));
        assert!(cmp(Value::Bool(true), Value::Num(0.5), CompOp::Eq));
        // number vs string: numeric comparison.
        assert!(cmp(Value::Num(2.0), Value::Str("2".into()), CompOp::Eq));
        // string vs string eq: string comparison.
        assert!(!cmp(Value::Str("2.0".into()), Value::Str("2".into()), CompOp::Eq));
        // string vs string relational: numeric.
        assert!(cmp(Value::Str("1".into()), Value::Str("10".into()), CompOp::Lt));
    }

    #[test]
    fn short_circuit_jumps() {
        let (store, vars) = rt_fixture();
        let gov = crate::governor::ResourceGovernor::unlimited();
        let rt = Runtime { store: &store, vars: &vars, gov: &gov };
        // r0 = false; if false jump over the part that would set r0=true.
        let prog = Program {
            instrs: vec![
                Instr::LoadConst { dst: 0, value: Const::Bool(false) },
                Instr::JumpIfFalse { cond: 0, target: 3 },
                Instr::LoadConst { dst: 0, value: Const::Bool(true) },
            ],
            nregs: 1,
            result: 0,
        };
        assert!(matches!(run(&prog, &rt, &vec![], &mut []), Value::Bool(false)));
    }
}
