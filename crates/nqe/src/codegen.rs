//! Code generation (compiler phase 6, paper §5.1): lower a logical plan
//! to physical iterators, resolve attribute names to register slots via
//! the attribute manager (aliasing renames where safe), and assemble NVM
//! programs for all scalar subscripts.

use std::sync::Arc;

use parking_lot::Mutex;

use algebra::attrmgr::{AttrManager, Slot};
use algebra::scalar::ScalarExpr;
use algebra::LogicalOp;
use compiler::CompiledQuery;

use crate::iter::{
    CompiledPred, ConcatIter, CounterIter, DJoinIter, DedupIter, ExchangeIter, MapIter,
    MemoMapIter, MemoXIter, NestedEval, ParallelStats, PartitionFeed, PartitionSourceIter,
    PhysIter, RenameCopyIter, SelectIter, SemiJoinIter, SharedMemo, SingletonIter, SortIter,
    TmpCsIter, TokenizeIter, UnnestMapIter,
};
use crate::nvm::{Instr, Program, Reg};
use crate::profile::{OpStats, Profile, ProfileEntry, ProfiledIter, SharedStats};

/// Well-known slots of the execution frame.
#[derive(Clone, Copy, Debug)]
pub struct FrameInfo {
    /// Total register-frame width.
    pub width: usize,
    /// Slot of the context node `cn`.
    pub cn: Slot,
    /// Slot of the top-level context position `cp`.
    pub cp: Slot,
    /// Slot of the top-level context size `cs`.
    pub cs: Slot,
}

/// A physical query ready for execution.
pub enum PhysicalQuery {
    /// Sequence-valued: the iterator tree plus frame layout.
    Sequence {
        /// Root iterator.
        root: Box<dyn PhysIter>,
        /// Frame layout.
        frame: FrameInfo,
    },
    /// Scalar-valued: a compiled subscript (with nested plans).
    Scalar {
        /// Compiled program.
        pred: CompiledPred,
        /// Frame layout.
        frame: FrameInfo,
        /// Profile counters for the top-level scalar evaluation itself
        /// (`None` when built without profiling — the untimed path
        /// allocates nothing).
        stats: Option<SharedStats>,
    },
}

/// Lower a compiled (logical) query to the physical algebra.
pub fn build_physical(q: &CompiledQuery) -> PhysicalQuery {
    build(q, None).0
}

/// Lower with per-operator profiling (paper §6.2: "profiling NQE").
/// Every iterator is wrapped by a counting adapter; the returned
/// [`Profile`] shares its counters with the plan.
pub fn build_physical_profiled(q: &CompiledQuery) -> (PhysicalQuery, Profile) {
    let (phys, profile) = build(q, Some(Profile::default()));
    (phys, profile.expect("requested"))
}

fn build(q: &CompiledQuery, profile: Option<Profile>) -> (PhysicalQuery, Option<Profile>) {
    match q {
        CompiledQuery::Sequence(plan) => {
            let mut mgr = AttrManager::for_plan(plan);
            let mut cg = Codegen {
                mgr: &mut mgr,
                profile,
                depth: 0,
                partition_feed: None,
                memos: None,
            };
            let root = cg.build_iter(plan);
            let profile = cg.profile.take();
            let frame = finish_frame(&mut mgr);
            (PhysicalQuery::Sequence { root, frame }, profile)
        }
        CompiledQuery::Scalar(expr) => {
            // Reuse the plan-wide assignment analysis by wrapping the
            // scalar in a selection over □.
            let wrapper = LogicalOp::select(LogicalOp::Singleton, expr.clone());
            let mut mgr = AttrManager::for_plan(&wrapper);
            let mut cg = Codegen {
                mgr: &mut mgr,
                profile,
                depth: 0,
                partition_feed: None,
                memos: None,
            };
            // With profiling on, synthesize a root entry for the scalar
            // evaluation itself so the profile of a boolean/numeric query
            // is never empty; nested sequence plans hang one level below.
            let stats = cg.profile.as_mut().map(|p| {
                let stats: SharedStats = Arc::new(Mutex::new(OpStats::default()));
                p.entries.push(ProfileEntry {
                    label: format!("scalar[{expr}]"),
                    depth: 0,
                    stats: stats.clone(),
                });
                stats
            });
            if stats.is_some() {
                cg.depth = 1;
            }
            let pred = cg.compile_pred(expr);
            let profile = cg.profile.take();
            let frame = finish_frame(&mut mgr);
            (PhysicalQuery::Scalar { pred, frame, stats }, profile)
        }
    }
}

fn finish_frame(mgr: &mut AttrManager) -> FrameInfo {
    let cn = mgr.slot("cn");
    let cp = mgr.slot("cp");
    let cs = mgr.slot("cs");
    FrameInfo { width: mgr.frame_width(), cn, cp, cs }
}

struct Codegen<'m> {
    mgr: &'m mut AttrManager,
    profile: Option<Profile>,
    depth: usize,
    /// Set while lowering an Exchange body replica: the feed its ▤ leaf
    /// reads chunks from.
    partition_feed: Option<Arc<PartitionFeed>>,
    /// Set while lowering Exchange body replicas: shared MemoX tables,
    /// keyed by occurrence order (every replica traverses the same body
    /// plan, so the k-th MemoX of each replica shares table k).
    memos: Option<MemoRegistry>,
}

/// Occurrence-ordered registry of MemoX tables shared across the body
/// replicas of one Exchange.
#[derive(Default)]
struct MemoRegistry {
    tables: Vec<Arc<SharedMemo>>,
    next: usize,
    replica: usize,
}

impl Codegen<'_> {
    fn build_iter(&mut self, op: &LogicalOp) -> Box<dyn PhysIter> {
        // Register the entry before recursing so the profile reads in
        // plan (pre-order) order.
        let prof_idx = self.profile.as_mut().map(|p| {
            p.entries.push(ProfileEntry {
                label: algebra::explain::op_label(op),
                depth: self.depth,
                stats: Arc::new(Mutex::new(OpStats::default())),
            });
            p.entries.len() - 1
        });
        self.depth += 1;
        let inner = self.build_iter_inner(op);
        self.depth -= 1;
        match (prof_idx, &mut self.profile) {
            (Some(i), Some(p)) => {
                let stats = p.entries[i].stats.clone();
                Box::new(ProfiledIter::new(inner, stats))
            }
            _ => inner,
        }
    }

    fn build_iter_inner(&mut self, op: &LogicalOp) -> Box<dyn PhysIter> {
        match op {
            LogicalOp::Singleton => Box::new(SingletonIter::new()),
            LogicalOp::Select { input, pred } => {
                let input = self.build_iter(input);
                let pred = self.compile_pred(pred);
                Box::new(SelectIter::new(input, pred))
            }
            LogicalOp::DedupBy { input, attr } => {
                let input = self.build_iter(input);
                let slot = self.mgr.slot(attr);
                Box::new(DedupIter::new(input, slot))
            }
            LogicalOp::Rename { input, from, to } => {
                match self.mgr.rename(from, to) {
                    // Aliased by the attribute manager: no copy, no
                    // operator (paper §5.1).
                    None => self.build_iter(input),
                    Some((f, t)) => {
                        let input = self.build_iter(input);
                        Box::new(RenameCopyIter::new(input, f, t))
                    }
                }
            }
            LogicalOp::MapExpr { input, attr, expr } => {
                let input = self.build_iter(input);
                let out = self.mgr.slot(attr);
                let expr = self.compile_pred(expr);
                Box::new(MapIter::new(input, out, expr))
            }
            LogicalOp::CounterMap { input, attr, reset_on } => {
                let input = self.build_iter(input);
                let out = self.mgr.slot(attr);
                let reset = reset_on.as_ref().map(|a| self.mgr.slot(a));
                Box::new(CounterIter::new(input, out, reset))
            }
            LogicalOp::MemoMap { input, attr, expr, key } => {
                let input = self.build_iter(input);
                let out = self.mgr.slot(attr);
                let key = self.mgr.slot(key);
                let expr = self.compile_pred(expr);
                Box::new(MemoMapIter::new(input, out, key, expr))
            }
            LogicalOp::DJoin { left, right } | LogicalOp::Cross { left, right } => {
                // A cross product is a d-join whose dependent side happens
                // to have no free attributes.
                let left = self.build_iter(left);
                let right = self.build_iter(right);
                Box::new(DJoinIter::new(left, right))
            }
            LogicalOp::SemiJoin { left, right, pred } => self.build_semi(left, right, pred, false),
            LogicalOp::AntiJoin { left, right, pred } => self.build_semi(left, right, pred, true),
            LogicalOp::UnnestMap { input, context, attr, axis, test, hint, probe } => {
                let input = self.build_iter(input);
                let ctx = self.mgr.slot(context);
                let out = self.mgr.slot(attr);
                Box::new(UnnestMapIter::new(
                    input,
                    ctx,
                    out,
                    *axis,
                    test.clone(),
                    *hint,
                    probe.clone(),
                ))
            }
            LogicalOp::TokenizeMap { input, attr, expr } => {
                let input = self.build_iter(input);
                let out = self.mgr.slot(attr);
                let expr = self.compile_pred(expr);
                Box::new(TokenizeIter::new(input, out, expr))
            }
            LogicalOp::Concat { parts } => {
                let parts = parts.iter().map(|p| self.build_iter(p)).collect();
                Box::new(ConcatIter::new(parts))
            }
            LogicalOp::SortBy { input, attr } => {
                let input = self.build_iter(input);
                let slot = self.mgr.slot(attr);
                Box::new(SortIter::new(input, slot))
            }
            LogicalOp::TmpCs { input, cs, group } => {
                let input = self.build_iter(input);
                let cs = self.mgr.slot(cs);
                let group = group.as_ref().map(|g| self.mgr.slot(g));
                Box::new(TmpCsIter::new(input, cs, group))
            }
            LogicalOp::MemoX { input, key } => {
                let input = self.build_iter(input);
                let key = self.mgr.slot(key);
                match self.memos.as_mut() {
                    Some(reg) => {
                        if reg.next == reg.tables.len() {
                            reg.tables.push(Arc::new(SharedMemo::new()));
                        }
                        let table = reg.tables[reg.next].clone();
                        reg.next += 1;
                        Box::new(MemoXIter::new_shared(input, key, table, reg.replica == 0))
                    }
                    None => Box::new(MemoXIter::new(input, key)),
                }
            }
            LogicalOp::Exchange { source, body, partitions } => {
                self.build_exchange(source, body, (*partitions).max(2))
            }
            LogicalOp::PartitionSource => {
                let feed =
                    self.partition_feed.clone().expect("PartitionSource outside an Exchange body");
                Box::new(PartitionSourceIter::new(feed))
            }
        }
    }

    /// Lower an Exchange: build the source normally, then one full body
    /// replica per worker. With profiling on, each replica records into
    /// its own shard profile (the traversal is identical across
    /// replicas, so shard entries align 1:1) and the main profile gets
    /// one display row per body operator, refreshed to the shard sum
    /// after every parallel run.
    fn build_exchange(
        &mut self,
        source: &LogicalOp,
        body: &LogicalOp,
        workers: usize,
    ) -> Box<dyn PhysIter> {
        let source = self.build_iter(source);
        let mut registry = MemoRegistry::default();
        let mut replicas: Vec<(Box<dyn PhysIter>, Arc<PartitionFeed>)> =
            Vec::with_capacity(workers);
        let mut shards: Vec<Vec<SharedStats>> = Vec::new();
        let mut rows: Vec<(String, usize)> = Vec::new();
        for w in 0..workers {
            registry.next = 0;
            registry.replica = w;
            let feed = Arc::new(PartitionFeed::new());
            let mut sub = Codegen {
                mgr: &mut *self.mgr,
                profile: self.profile.as_ref().map(|_| Profile::default()),
                depth: 0,
                partition_feed: Some(feed.clone()),
                memos: Some(registry),
            };
            let body_iter = sub.build_iter(body);
            let sub_profile = sub.profile.take();
            registry = sub.memos.take().expect("registry survives the replica build");
            if let Some(p) = sub_profile {
                if w == 0 {
                    rows = p.entries.iter().map(|e| (e.label.clone(), e.depth)).collect();
                }
                shards.push(p.entries.into_iter().map(|e| e.stats).collect());
            }
            replicas.push((body_iter, feed));
        }
        let base_depth = self.depth;
        let display: Vec<SharedStats> = match self.profile.as_mut() {
            Some(p) => rows
                .iter()
                .map(|(label, depth)| {
                    let stats: SharedStats = Arc::new(Mutex::new(OpStats::default()));
                    p.entries.push(ProfileEntry {
                        label: label.clone(),
                        depth: base_depth + depth,
                        stats: stats.clone(),
                    });
                    stats
                })
                .collect(),
            None => Vec::new(),
        };
        let stats = self.profile.as_mut().map(|p| {
            let s = Arc::new(Mutex::new(ParallelStats::new(workers)));
            p.parallel.push(s.clone());
            s
        });
        Box::new(ExchangeIter::new(source, replicas, display, shards, stats))
    }

    fn build_semi(
        &mut self,
        left: &LogicalOp,
        right: &LogicalOp,
        pred: &ScalarExpr,
        anti: bool,
    ) -> Box<dyn PhysIter> {
        let right_defined: Vec<Slot> =
            right.defined_attrs().iter().map(|a| self.mgr.slot(a)).collect();
        let left = self.build_iter(left);
        let right = self.build_iter(right);
        let pred = self.compile_pred(pred);
        Box::new(SemiJoinIter::new(left, right, pred, right_defined, anti))
    }

    /// Compile a scalar subscript to an NVM program.
    fn compile_pred(&mut self, e: &ScalarExpr) -> CompiledPred {
        let mut prog = Program::default();
        let mut nested = Vec::new();
        let result = self.emit(e, &mut prog, &mut nested);
        prog.result = result;
        CompiledPred { prog, nested }
    }

    fn new_reg(&mut self, prog: &mut Program) -> Reg {
        let r = prog.nregs;
        prog.nregs += 1;
        r
    }

    fn emit(&mut self, e: &ScalarExpr, prog: &mut Program, nested: &mut Vec<NestedEval>) -> Reg {
        use ScalarExpr as S;
        match e {
            S::Const(c) => {
                let dst = self.new_reg(prog);
                prog.instrs.push(Instr::LoadConst { dst, value: c.clone() });
                dst
            }
            S::Attr(name) => {
                let slot = self.mgr.slot(name);
                let dst = self.new_reg(prog);
                prog.instrs.push(Instr::LoadSlot { dst, slot });
                dst
            }
            S::Var(name) => {
                let dst = self.new_reg(prog);
                prog.instrs.push(Instr::LoadVar { dst, name: name.clone() });
                dst
            }
            S::And(a, b) => {
                let ra = self.emit(a, prog, nested);
                let jump_at = prog.instrs.len();
                prog.instrs.push(Instr::JumpIfFalse { cond: ra, target: 0 });
                let rb = self.emit(b, prog, nested);
                prog.instrs.push(Instr::Move { dst: ra, src: rb });
                let end = prog.instrs.len();
                prog.instrs[jump_at] = Instr::JumpIfFalse { cond: ra, target: end };
                ra
            }
            S::Or(a, b) => {
                let ra = self.emit(a, prog, nested);
                let jump_at = prog.instrs.len();
                prog.instrs.push(Instr::JumpIfTrue { cond: ra, target: 0 });
                let rb = self.emit(b, prog, nested);
                prog.instrs.push(Instr::Move { dst: ra, src: rb });
                let end = prog.instrs.len();
                prog.instrs[jump_at] = Instr::JumpIfTrue { cond: ra, target: end };
                ra
            }
            S::Not(a) => {
                let ra = self.emit(a, prog, nested);
                let dst = self.new_reg(prog);
                prog.instrs.push(Instr::Not { dst, a: ra });
                dst
            }
            S::Compare { op, mode, lhs, rhs } => {
                let ra = self.emit(lhs, prog, nested);
                let rb = self.emit(rhs, prog, nested);
                let dst = self.new_reg(prog);
                prog.instrs.push(Instr::Cmp { op: *op, mode: *mode, dst, a: ra, b: rb });
                dst
            }
            S::Arith(op, a, b) => {
                let ra = self.emit(a, prog, nested);
                let rb = self.emit(b, prog, nested);
                let dst = self.new_reg(prog);
                prog.instrs.push(Instr::Arith { op: *op, dst, a: ra, b: rb });
                dst
            }
            S::Neg(a) => {
                let ra = self.emit(a, prog, nested);
                let dst = self.new_reg(prog);
                prog.instrs.push(Instr::Neg { dst, a: ra });
                dst
            }
            S::Convert(kind, a) => {
                let ra = self.emit(a, prog, nested);
                let dst = self.new_reg(prog);
                prog.instrs.push(match kind {
                    algebra::ConvKind::ToNumber => Instr::ToNumber { dst, a: ra },
                    algebra::ConvKind::ToString => Instr::ToString { dst, a: ra },
                    algebra::ConvKind::ToBoolean => Instr::ToBoolean { dst, a: ra },
                });
                dst
            }
            S::StrFn(f, args) => {
                let regs: Vec<Reg> = args.iter().map(|a| self.emit(a, prog, nested)).collect();
                let dst = self.new_reg(prog);
                prog.instrs.push(Instr::StrOp { f: *f, dst, args: regs });
                dst
            }
            S::NumFn(f, a) => {
                let ra = self.emit(a, prog, nested);
                let dst = self.new_reg(prog);
                prog.instrs.push(Instr::NumOp { f: *f, dst, a: ra });
                dst
            }
            S::NodeFn(f, a) => {
                let ra = self.emit(a, prog, nested);
                let dst = self.new_reg(prog);
                prog.instrs.push(Instr::NodeOp { f: *f, dst, a: ra });
                dst
            }
            S::Lang(a, ctx_attr) => {
                let ra = self.emit(a, prog, nested);
                let ctx = self.mgr.slot(ctx_attr);
                let dst = self.new_reg(prog);
                prog.instrs.push(Instr::Lang { dst, a: ra, ctx });
                dst
            }
            S::Deref(a) => {
                let ra = self.emit(a, prog, nested);
                let dst = self.new_reg(prog);
                prog.instrs.push(Instr::Deref { dst, a: ra });
                dst
            }
            S::RootOf(a) => {
                let ra = self.emit(a, prog, nested);
                let dst = self.new_reg(prog);
                prog.instrs.push(Instr::RootOf { dst, a: ra });
                dst
            }
            S::Agg(agg) => {
                let over = self.mgr.slot(&agg.over);
                let iter = self.build_iter(&agg.plan);
                let idx = nested.len();
                nested.push(NestedEval::new(iter, over, agg.func, agg.independent));
                let dst = self.new_reg(prog);
                prog.instrs.push(Instr::EvalNested { dst, idx });
                dst
            }
        }
    }
}
