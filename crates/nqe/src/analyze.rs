//! EXPLAIN ANALYZE: one report unifying the compile-phase trace
//! ([`compiler::QueryTrace`]), the timed operator profile
//! ([`crate::profile::Profile`]) and the query result — with a text
//! renderer (the plan tree in the paper's σ/Υ/Π^D notation annotated
//! with actual times, opens, tuples and gauges) and a stable JSON
//! renderer (schema documented on [`AnalyzeReport::to_json`]).

use std::collections::HashMap;
use std::time::Instant;

use algebra::{QueryError, QueryOutput, Value};
use compiler::{
    compile_traced_with_stats, cost, OptimizerTrace, PipelineError, QueryTrace, ResourceLimits,
    TranslateOptions,
};
use xmlstore::{NodeId, XmlStore};

use crate::codegen::build_physical_profiled;
use crate::governor::ResourceGovernor;
use crate::json::Json;
use crate::profile::{fmt_nanos, Profile};

/// Governor-side accounting of one execution, included in every report
/// (unlimited runs report zero limits and — usually — zero charges only
/// when the plan materialises nothing).
pub struct ResourceReport {
    /// The limits the execution ran under.
    pub limits: ResourceLimits,
    /// Highest concurrent byte usage (the governor's high-water mark).
    pub high_water_bytes: u64,
    /// Cumulative bytes charged over the whole execution.
    pub charged_bytes: u64,
    /// Tuples counted against the tuple budget.
    pub tuples_charged: u64,
    /// Transient bytes still held after the plan closed — non-zero means
    /// leaked temp state (asserted zero by the fault-injection tests).
    pub transient_bytes: u64,
    /// The typed error that stopped execution, if the governor tripped.
    pub error: Option<QueryError>,
}

impl ResourceReport {
    fn capture(gov: &ResourceGovernor) -> ResourceReport {
        ResourceReport {
            limits: *gov.limits(),
            high_water_bytes: gov.high_water(),
            charged_bytes: gov.charged_total(),
            tuples_charged: gov.tuples_charged(),
            transient_bytes: gov.transient_bytes(),
            error: gov.error(),
        }
    }
}

/// Storage-layer gauges of one execution: the delta of the store's
/// buffer-manager counters across the run. `None` in [`AnalyzeReport`]
/// for main-memory stores (no buffer manager, nothing to report).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageReport {
    /// Pin requests served from resident frames.
    pub page_hits: u64,
    /// Pin requests that read a page from disk.
    pub pages_read: u64,
    /// Frames evicted to make room for a read.
    pub evictions: u64,
    /// Pages whose CRC32C trailer was verified after a read.
    pub pages_verified: u64,
    /// Pages whose trailer did not match (each surfaced as a typed
    /// storage error).
    pub checksum_failures: u64,
}

/// One operator's estimated vs. actual cardinality, the reconciliation
/// the cost-based optimizer is audited by: `est_tuples` is what the
/// estimator predicted for the operator before execution, `actual_tuples`
/// what the profiled run produced. Rows exist only when the plan was
/// optimized cost-based, the execution was profiled, and the store's
/// statistics fingerprint still matches the one the plan was optimized
/// under (a cache hit against a restatted store reports nothing rather
/// than stale estimates).
#[derive(Clone, Debug, PartialEq)]
pub struct CardinalityCheck {
    /// Operator label (same [`algebra::explain::op_label`] form as the
    /// profile entry it was paired with).
    pub label: String,
    /// The optimizer's predicted output cardinality.
    pub est_tuples: f64,
    /// Tuples the operator actually produced.
    pub actual_tuples: u64,
    /// `|est - actual| / max(actual, 1)` as a percentage.
    pub error_pct: f64,
}

/// The result of an `EXPLAIN ANALYZE` run: compile trace, operator
/// profile, resource accounting, and the shape of the result.
pub struct AnalyzeReport {
    /// Per-phase compile timings, fired rewrites and plan statistics.
    /// Extended with `codegen` and `execute` phases by [`explain_analyze`].
    pub trace: QueryTrace,
    /// Per-operator timings/counters/gauges.
    pub profile: Profile,
    /// Governor accounting (memory high-water, charges, budget outcome).
    pub resources: ResourceReport,
    /// Buffer-manager gauges for paged stores (`None` for main-memory
    /// stores).
    pub storage: Option<StorageReport>,
    /// Estimated-vs-actual cardinality per operator, in plan pre-order.
    /// Empty unless the cost-based optimizer ran and the execution was
    /// profiled (see [`CardinalityCheck`]).
    pub cardinality: Vec<CardinalityCheck>,
    /// Kind of the result (`nodes`, `bool`, `num`, `str`, or `error`).
    pub result_kind: &'static str,
    /// Node count for node-set results, 1 otherwise (0 for errors).
    pub result_count: usize,
    /// Short rendering of the result (node-sets render as a count).
    pub result_summary: String,
}

/// Compile, lower and execute `query` with full observability: every
/// pipeline phase is timed (including code generation and execution,
/// appended to the trace), every physical operator is profiled. Returns
/// the result alongside the report.
pub fn explain_analyze(
    store: &dyn XmlStore,
    query: &str,
    opts: &TranslateOptions,
    ctx: NodeId,
    vars: &HashMap<String, Value>,
) -> Result<(QueryOutput, AnalyzeReport), PipelineError> {
    let (out, report) =
        explain_analyze_governed(store, query, opts, &ResourceLimits::unlimited(), ctx, vars)?;
    // An unlimited governor cannot trip, but a paged store can still fail
    // mid-query (I/O error, detected corruption) — surface that typed.
    Ok((out?, report))
}

/// [`explain_analyze`] under resource limits. Compile failures surface in
/// the outer `Result`; budget trips surface in the *inner* one, paired
/// with the report — the profile and governor accounting of a stopped
/// query are exactly what one inspects to understand the trip.
pub fn explain_analyze_governed(
    store: &dyn XmlStore,
    query: &str,
    opts: &TranslateOptions,
    limits: &ResourceLimits,
    ctx: NodeId,
    vars: &HashMap<String, Value>,
) -> Result<(Result<QueryOutput, QueryError>, AnalyzeReport), PipelineError> {
    observe_governed(store, query, opts, limits, ctx, vars, true)
}

/// The engine observability entry point behind both EXPLAIN ANALYZE and
/// engine telemetry: compile with trace, lower (profiled or plain),
/// execute governed, capture the storage delta and resource accounting.
/// `profiled` selects between [`build_physical_profiled`] (per-operator
/// timings, needed for EXPLAIN and slow-query capture) and the untimed
/// [`crate::codegen::build_physical`] path (the report's profile is then
/// empty, but the trace/resource/storage sections are still filled) —
/// telemetry-enabled engines use the cheap path for plain evaluation.
pub fn observe_governed(
    store: &dyn XmlStore,
    query: &str,
    opts: &TranslateOptions,
    limits: &ResourceLimits,
    ctx: NodeId,
    vars: &HashMap<String, Value>,
    profiled: bool,
) -> Result<(Result<QueryOutput, QueryError>, AnalyzeReport), PipelineError> {
    let stats = store.structural_index().map(|idx| idx.stats());
    let (compiled, trace) = compile_traced_with_stats(query, opts, stats)?;
    Ok(execute_observed(store, &compiled, trace, limits, ctx, vars, profiled))
}

/// Execute an already-compiled query under full observability: lower it
/// (profiled or plain), run governed, capture the storage delta and
/// resource accounting, and append the `codegen`/`execute` phases to the
/// caller-provided `trace`. This is [`observe_governed`] minus the
/// compile step — the entry point behind the plan cache, where a hit
/// skips parse/semantic/fold/translate entirely and the trace carries
/// only the per-execution phases.
pub fn execute_observed(
    store: &dyn XmlStore,
    compiled: &compiler::CompiledQuery,
    mut trace: QueryTrace,
    limits: &ResourceLimits,
    ctx: NodeId,
    vars: &HashMap<String, Value>,
    profiled: bool,
) -> (Result<QueryOutput, QueryError>, AnalyzeReport) {
    let t0 = Instant::now();
    let (mut phys, profile) = if profiled {
        build_physical_profiled(compiled)
    } else {
        (crate::codegen::build_physical(compiled), Profile::default())
    };
    trace.add_phase("codegen", t0.elapsed().as_nanos() as u64);

    let gov = ResourceGovernor::new(*limits);
    let stats_before = store.buffer_stats();
    let t0 = Instant::now();
    let out = phys.execute_governed(store, vars, ctx, &gov);
    trace.add_phase("execute", t0.elapsed().as_nanos() as u64);
    let storage = match (stats_before, store.buffer_stats()) {
        (Some(b), Some(a)) => Some(StorageReport {
            page_hits: a.hits - b.hits,
            pages_read: a.misses - b.misses,
            evictions: a.evictions - b.evictions,
            pages_verified: a.pages_verified - b.pages_verified,
            checksum_failures: a.checksum_failures - b.checksum_failures,
        }),
        _ => None,
    };

    let resources = ResourceReport::capture(&gov);
    let (result_kind, result_count, result_summary) = match &out {
        Ok(out) => describe(out),
        Err(e) => ("error", 0, e.to_string()),
    };
    let cardinality = match &trace.optimizer {
        Some(opt) => reconcile_cardinalities(store, compiled, opt, &profile),
        None => Vec::new(),
    };
    let report = AnalyzeReport {
        trace,
        profile,
        resources,
        storage,
        cardinality,
        result_kind,
        result_count,
        result_summary,
    };
    (out, report)
}

/// Pair the optimizer's pre-execution estimates with the measured
/// profile, positionally and label-guarded: both walks emit operators in
/// the same pre-order, so position `i` refers to the same operator in
/// both — but if a label ever disagrees (a plan-shape drift bug, or a
/// cache entry replayed against a different plan) the pair is dropped
/// rather than reported wrong. Reconciliation only happens when the
/// store's current statistics fingerprint equals the one the plan was
/// optimized under.
fn reconcile_cardinalities(
    store: &dyn XmlStore,
    compiled: &compiler::CompiledQuery,
    opt: &OptimizerTrace,
    profile: &Profile,
) -> Vec<CardinalityCheck> {
    let Some(stats) = store.structural_index().map(|idx| idx.stats()) else {
        return Vec::new();
    };
    if stats.fingerprint != opt.stats_fingerprint {
        return Vec::new();
    }
    cost::estimate_operators(compiled, stats)
        .iter()
        .zip(&profile.entries)
        .filter(|(est, entry)| est.label == entry.label)
        .map(|(est, entry)| {
            let actual = entry.stats.lock().tuples;
            CardinalityCheck {
                label: est.label.clone(),
                est_tuples: est.est_tuples,
                actual_tuples: actual,
                error_pct: (est.est_tuples - actual as f64).abs() / (actual as f64).max(1.0)
                    * 100.0,
            }
        })
        .collect()
}

impl AnalyzeReport {
    /// Mean absolute cardinality-estimation error across all reconciled
    /// operators, as a percentage — the single number telemetry tracks
    /// (`None` when nothing was reconciled).
    pub fn mean_est_error_pct(&self) -> Option<f64> {
        if self.cardinality.is_empty() {
            return None;
        }
        let sum: f64 = self.cardinality.iter().map(|c| c.error_pct).sum();
        Some(sum / self.cardinality.len() as f64)
    }
}

fn describe(out: &QueryOutput) -> (&'static str, usize, String) {
    match out {
        QueryOutput::Nodes(ns) => ("nodes", ns.len(), format!("{} node(s)", ns.len())),
        QueryOutput::Bool(b) => ("bool", 1, b.to_string()),
        QueryOutput::Num(n) => ("num", 1, n.to_string()),
        QueryOutput::Str(s) => ("str", 1, format!("{s:?}")),
    }
}

impl AnalyzeReport {
    /// Render the full report as text: compile-phase breakdown, then the
    /// operator tree annotated with actual time/opens/tuples/gauges, then
    /// the result line.
    pub fn text(&self) -> String {
        let mut out = self.trace.report();
        out.push('\n');
        out.push_str("operators (actual):\n");
        out.push_str(&self.profile.report());
        let r = &self.resources;
        let mut limits = Vec::new();
        if let Some(b) = r.limits.max_memory_bytes {
            limits.push(format!("mem={b}B"));
        }
        if let Some(t) = r.limits.max_tuples {
            limits.push(format!("tuples={t}"));
        }
        if let Some(t) = r.limits.timeout {
            limits.push(format!("timeout={}ms", t.as_millis()));
        }
        let limits = if limits.is_empty() {
            "unlimited".to_owned()
        } else {
            limits.join(" ")
        };
        out.push_str(&format!(
            "resources: peak {}B, charged {}B, {} tuples materialized (limits: {})\n",
            r.high_water_bytes, r.charged_bytes, r.tuples_charged, limits,
        ));
        if let Some(s) = &self.storage {
            out.push_str(&format!(
                "storage: {} page reads ({} hits, {} evictions), {} verified, \
                 {} checksum failures\n",
                s.pages_read, s.page_hits, s.evictions, s.pages_verified, s.checksum_failures,
            ));
        }
        for (i, stats) in self.profile.parallel.iter().enumerate() {
            let p = stats.lock();
            let max = p.worker_tuples.iter().copied().max().unwrap_or(0);
            let avg = if p.workers > 0 {
                p.worker_tuples.iter().sum::<u64>() as f64 / p.workers as f64
            } else {
                0.0
            };
            let imbalance = if avg > 0.0 { max as f64 / avg } else { 1.0 };
            out.push_str(&format!(
                "parallel[{i}]: {} workers, {} partitions, {} source tuples, \
                 merge {}, {} run(s)\n",
                p.workers,
                p.partitions,
                p.source_tuples,
                fmt_nanos(p.merge_nanos),
                p.runs,
            ));
            out.push_str(&format!(
                "  worker tuples: {:?} (imbalance {imbalance:.2}×), chunks claimed: {:?}\n",
                p.worker_tuples, p.worker_chunks,
            ));
        }
        if !self.cardinality.is_empty() {
            out.push_str("optimizer cardinalities (est vs actual):\n");
            let label_w =
                self.cardinality.iter().map(|c| c.label.chars().count()).max().unwrap_or(0);
            for c in &self.cardinality {
                out.push_str(&format!(
                    "  {:<label_w$}  est {:>10.1}  actual {:>8}  err {:6.1}%\n",
                    c.label, c.est_tuples, c.actual_tuples, c.error_pct,
                ));
            }
            if let Some(mean) = self.mean_est_error_pct() {
                out.push_str(&format!("  mean estimation error: {mean:.1}%\n"));
            }
        }
        if let Some(e) = &r.error {
            out.push_str(&format!("stopped: {e}\n"));
        }
        out.push_str(&format!(
            "result: {} in {} (plan time {})\n",
            self.result_summary,
            fmt_nanos(self.trace.total_nanos()),
            fmt_nanos(self.profile.total_time().as_nanos() as u64),
        ));
        out
    }

    /// Export as JSON. Stable schema:
    ///
    /// ```json
    /// {
    ///   "query": "...",
    ///   "phases": [{"name": "parse", "nanos": 123}, ...],
    ///   "rewrites": ["memoize-inner ×1", ...],
    ///   "plan": {"ops": 12, "depth": 5,
    ///            "op_counts": {"Υ": 4, ...}, "pruned_ops": 0},
    ///   "operators": [{"label": "Π^D[cn]", "depth": 0, "opens": 1,
    ///                  "tuples": 10, "nanos": 123, "self_nanos": 50,
    ///                  "gauges": {"dup_dropped": 2, "mem_charged": 0,
    ///                             "mem_peak": 0, ...}}, ...],
    ///   "storage": {"page_hits": 0, "pages_read": 0, "evictions": 0,
    ///               "pages_verified": 0, "checksum_failures": 0},
    ///   "parallel": [{"workers": 4, "partitions": 16,
    ///                 "source_tuples": 500, "worker_tuples": [120, ...],
    ///                 "worker_chunks": [4, ...], "merge_nanos": 123,
    ///                 "runs": 1}],
    ///   "optimizer": {"stats_fingerprint": "0x00000304998a8f1b",
    ///                 "decisions": [{"rule": "memo-keep-or-drop",
    ///                                "site": "𝔐[c1]", "choice": "keep",
    ///                                "est_chosen": 40.0,
    ///                                "est_rejected": 160.0}],
    ///                 "cardinalities": [{"label": "Π^D[cn]",
    ///                                    "est_tuples": 12.0,
    ///                                    "actual_tuples": 10,
    ///                                    "error_pct": 20.0}]},
    ///   "resources": {"high_water_bytes": 0, "charged_bytes": 0,
    ///                 "tuples_charged": 0, "transient_bytes": 0,
    ///                 "limits": {"max_memory_bytes": null,
    ///                            "max_tuples": null,
    ///                            "timeout_millis": null},
    ///                 "error": null},
    ///   "result": {"kind": "nodes", "count": 10},
    ///   "total_nanos": 456
    /// }
    /// ```
    ///
    /// `operators` is in plan (pre-order) order; `depth` reconstructs the
    /// tree. All times are wall-clock nanoseconds. Materialising
    /// operators report `mem_charged`/`mem_peak` gauges; `resources` is
    /// the governor's plan-wide accounting of the same charges. `storage`
    /// is `null` for main-memory stores. `optimizer` is `null` unless the
    /// cost-based pass ran; its `cardinalities` array is empty when the
    /// execution was unprofiled or the store's statistics fingerprint no
    /// longer matches the plan's.
    pub fn to_json(&self) -> Json {
        let mut root = trace_json_fields(&self.trace);
        root.push(("operators".to_owned(), profile_json(&self.profile)));
        root.push((
            "storage".to_owned(),
            self.storage
                .as_ref()
                .map(|s| {
                    Json::obj(vec![
                        ("page_hits", Json::Num(s.page_hits as f64)),
                        ("pages_read", Json::Num(s.pages_read as f64)),
                        ("evictions", Json::Num(s.evictions as f64)),
                        ("pages_verified", Json::Num(s.pages_verified as f64)),
                        ("checksum_failures", Json::Num(s.checksum_failures as f64)),
                    ])
                })
                .unwrap_or(Json::Null),
        ));
        root.push((
            "parallel".to_owned(),
            Json::Arr(
                self.profile
                    .parallel
                    .iter()
                    .map(|stats| {
                        let p = stats.lock();
                        let per_worker =
                            |v: &[u64]| Json::Arr(v.iter().map(|n| Json::Num(*n as f64)).collect());
                        Json::obj(vec![
                            ("workers", Json::Num(p.workers as f64)),
                            ("partitions", Json::Num(p.partitions as f64)),
                            ("source_tuples", Json::Num(p.source_tuples as f64)),
                            ("worker_tuples", per_worker(&p.worker_tuples)),
                            ("worker_chunks", per_worker(&p.worker_chunks)),
                            ("merge_nanos", Json::Num(p.merge_nanos as f64)),
                            ("runs", Json::Num(p.runs as f64)),
                        ])
                    })
                    .collect(),
            ),
        ));
        root.push((
            "optimizer".to_owned(),
            self.trace
                .optimizer
                .as_ref()
                .map(|opt| optimizer_json(opt, &self.cardinality))
                .unwrap_or(Json::Null),
        ));
        root.push(("resources".to_owned(), resources_json(&self.resources)));
        root.push((
            "result".to_owned(),
            Json::obj(vec![
                ("kind", Json::Str(self.result_kind.to_owned())),
                ("count", Json::Num(self.result_count as f64)),
            ]),
        ));
        root.push(("total_nanos".to_owned(), Json::Num(self.trace.total_nanos() as f64)));
        Json::Obj(root)
    }
}

fn optimizer_json(opt: &OptimizerTrace, cardinality: &[CardinalityCheck]) -> Json {
    let decisions = opt
        .decisions
        .iter()
        .map(|d| {
            Json::obj(vec![
                ("rule", Json::Str(d.rule.to_owned())),
                ("site", Json::Str(d.site.clone())),
                ("choice", Json::Str(d.choice.to_owned())),
                ("est_chosen", Json::Num(d.est_chosen)),
                ("est_rejected", Json::Num(d.est_rejected)),
            ])
        })
        .collect();
    let cards = cardinality
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("label", Json::Str(c.label.clone())),
                ("est_tuples", Json::Num(c.est_tuples)),
                ("actual_tuples", Json::Num(c.actual_tuples as f64)),
                ("error_pct", Json::Num(c.error_pct)),
            ])
        })
        .collect();
    // The fingerprint is a full 64-bit hash — rendered as a hex string
    // because JSON numbers are f64 and would silently round it.
    Json::obj(vec![
        ("stats_fingerprint", Json::Str(format!("{:#018x}", opt.stats_fingerprint))),
        ("decisions", Json::Arr(decisions)),
        ("cardinalities", Json::Arr(cards)),
    ])
}

fn resources_json(r: &ResourceReport) -> Json {
    let opt_num = |v: Option<u64>| v.map(|n| Json::Num(n as f64)).unwrap_or(Json::Null);
    Json::obj(vec![
        ("high_water_bytes", Json::Num(r.high_water_bytes as f64)),
        ("charged_bytes", Json::Num(r.charged_bytes as f64)),
        ("tuples_charged", Json::Num(r.tuples_charged as f64)),
        ("transient_bytes", Json::Num(r.transient_bytes as f64)),
        (
            "limits",
            Json::obj(vec![
                ("max_memory_bytes", opt_num(r.limits.max_memory_bytes)),
                ("max_tuples", opt_num(r.limits.max_tuples)),
                ("timeout_millis", opt_num(r.limits.timeout.map(|t| t.as_millis() as u64))),
            ]),
        ),
        (
            "error",
            r.error.as_ref().map(|e| Json::Str(e.to_string())).unwrap_or(Json::Null),
        ),
    ])
}

fn trace_json_fields(trace: &QueryTrace) -> Vec<(String, Json)> {
    let phases = trace
        .phases
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("name", Json::Str(p.name.clone())),
                ("nanos", Json::Num(p.nanos as f64)),
            ])
        })
        .collect();
    let rewrites = trace.rewrites.iter().map(|r| Json::Str(r.clone())).collect();
    let op_counts =
        trace.op_counts.iter().map(|(k, n)| (k.clone(), Json::Num(*n as f64))).collect();
    vec![
        ("query".to_owned(), Json::Str(trace.query.clone())),
        ("phases".to_owned(), Json::Arr(phases)),
        ("rewrites".to_owned(), Json::Arr(rewrites)),
        (
            "plan".to_owned(),
            Json::obj(vec![
                ("ops", Json::Num(trace.plan_ops as f64)),
                ("depth", Json::Num(trace.plan_depth as f64)),
                ("op_counts", Json::Obj(op_counts)),
                ("pruned_ops", Json::Num(trace.pruned_ops as f64)),
            ]),
        ),
    ]
}

/// The operator profile alone as a JSON array (used by the bench
/// binaries' per-query exports).
pub fn profile_json(profile: &Profile) -> Json {
    let self_nanos = profile.self_nanos();
    Json::Arr(
        profile
            .entries
            .iter()
            .zip(&self_nanos)
            .map(|(e, self_ns)| {
                let s = e.stats.lock();
                let gauges = s.gauges.iter().map(|(k, v)| ((*k).to_owned(), Json::Num(*v as f64)));
                Json::obj(vec![
                    ("label", Json::Str(e.label.clone())),
                    ("depth", Json::Num(e.depth as f64)),
                    ("opens", Json::Num(s.opens as f64)),
                    ("tuples", Json::Num(s.tuples as f64)),
                    ("nanos", Json::Num(s.nanos as f64)),
                    ("self_nanos", Json::Num(*self_ns as f64)),
                    ("gauges", Json::Obj(gauges.collect())),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlstore::parse_document;

    fn run(query: &str) -> (QueryOutput, AnalyzeReport) {
        let store = parse_document("<r><a><b>x</b><b>y</b></a><a><b>x</b></a></r>").unwrap();
        explain_analyze(&store, query, &TranslateOptions::improved(), store.root(), &HashMap::new())
            .unwrap()
    }

    #[test]
    fn sequence_query_report() {
        let (out, rep) = run("/r/a/b");
        assert!(matches!(out, QueryOutput::Nodes(ref ns) if ns.len() == 3), "{out:?}");
        assert_eq!(rep.result_kind, "nodes");
        assert_eq!(rep.result_count, 3);
        let text = rep.text();
        assert!(text.contains("compile phases"), "{text}");
        assert!(text.contains("codegen"), "{text}");
        assert!(text.contains("execute"), "{text}");
        assert!(text.contains("Υ["), "{text}");
        assert!(text.contains("result: 3 node(s)"), "{text}");
        // Every operator ran exactly once at the top level and the root
        // produced the result tuples.
        assert!(rep.profile.total_tuples() > 0);
    }

    #[test]
    fn scalar_query_report_not_empty() {
        let (out, rep) = run("count(/r/a/b)");
        assert_eq!(out, QueryOutput::Num(3.0));
        assert!(
            !rep.profile.entries.is_empty(),
            "scalar queries must still produce operator profiles"
        );
        assert!(rep.profile.entries[0].label.starts_with("scalar["));
        // The nested plan operators hang below the synthetic root.
        assert!(rep.profile.entries.len() > 1);
        assert!(rep.profile.entries[1].depth > rep.profile.entries[0].depth);
        let json = rep.to_json();
        assert_eq!(
            json.get("result").and_then(|r| r.get("kind")).and_then(Json::as_str),
            Some("num")
        );
    }

    #[test]
    fn pure_scalar_still_profiled() {
        let (out, rep) = run("1 + 2");
        assert_eq!(out, QueryOutput::Num(3.0));
        assert_eq!(rep.profile.entries.len(), 1, "synthetic scalar root expected");
        assert_eq!(rep.profile.entries[0].stats.lock().opens, 1);
    }

    #[test]
    fn parallel_section_reports_exchange() {
        let store = parse_document("<r><a><b>x</b><b>y</b></a><a><b>x</b></a></r>").unwrap();
        let opts = TranslateOptions::improved().with_threads(4);
        let (out, rep) =
            explain_analyze(&store, "/r/a/descendant::b", &opts, store.root(), &HashMap::new())
                .unwrap();
        assert!(matches!(out, QueryOutput::Nodes(ref ns) if ns.len() == 3), "{out:?}");
        assert_eq!(rep.profile.parallel.len(), 1, "one Exchange expected");
        let text = rep.text();
        assert!(text.contains("parallel[0]: 4 workers"), "{text}");
        assert!(text.contains("worker tuples:"), "{text}");
        let json = rep.to_json();
        let par = json.get("parallel").and_then(Json::as_arr).unwrap();
        assert_eq!(par.len(), 1);
        assert_eq!(par[0].get("workers").and_then(Json::as_num), Some(4.0));
        assert_eq!(par[0].get("worker_tuples").and_then(Json::as_arr).map(|a| a.len()), Some(4));
        // Serial plans keep the section empty (and the JSON array too).
        let (_, serial) = run("/r/a/descendant::b");
        assert!(serial.profile.parallel.is_empty());
        assert!(!serial.text().contains("parallel["));
    }

    #[test]
    fn cost_based_run_reports_optimizer_section() {
        let store = parse_document("<r><a><b>x</b><b>y</b></a><a><b>x</b></a></r>").unwrap();
        let opts = TranslateOptions::cost_based();
        let (out, rep) =
            explain_analyze(&store, "/r/a[b = 'x']/b", &opts, store.root(), &HashMap::new())
                .unwrap();
        assert!(matches!(out, QueryOutput::Nodes(ref ns) if ns.len() == 3), "{out:?}");
        let opt = rep.trace.optimizer.as_ref().expect("cost pass must record a trace");
        assert_ne!(opt.stats_fingerprint, 0);
        // Every profiled operator reconciles: same pre-order, same labels.
        assert_eq!(rep.cardinality.len(), rep.profile.entries.len());
        for (c, e) in rep.cardinality.iter().zip(&rep.profile.entries) {
            assert_eq!(c.label, e.label);
            assert!(c.est_tuples.is_finite() && c.est_tuples >= 0.0);
        }
        assert!(rep.mean_est_error_pct().is_some());
        let text = rep.text();
        assert!(text.contains("optimizer: stats fp 0x"), "{text}");
        assert!(text.contains("optimizer cardinalities (est vs actual):"), "{text}");
        assert!(text.contains("mean estimation error:"), "{text}");
        let json = rep.to_json();
        let opt_json = json.get("optimizer").expect("optimizer key");
        let cards = opt_json.get("cardinalities").and_then(Json::as_arr).unwrap();
        assert_eq!(cards.len(), rep.cardinality.len());
        for c in cards {
            for key in ["label", "est_tuples", "actual_tuples", "error_pct"] {
                assert!(c.get(key).is_some(), "cardinality missing {key}");
            }
        }
    }

    #[test]
    fn cost_off_run_has_no_optimizer_section() {
        let (_, rep) = run("/r/a/b");
        assert!(rep.trace.optimizer.is_none());
        assert!(rep.cardinality.is_empty());
        assert_eq!(rep.mean_est_error_pct(), None);
        assert!(!rep.text().contains("optimizer"), "{}", rep.text());
        assert_eq!(rep.to_json().get("optimizer"), Some(&Json::Null));
    }

    #[test]
    fn json_round_trips_and_has_schema_fields() {
        let (_, rep) = run("/r/a[b = 'x']");
        let json = rep.to_json();
        let text = json.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, json, "pretty JSON must parse back identically");
        for key in [
            "query",
            "phases",
            "rewrites",
            "plan",
            "operators",
            "resources",
            "result",
            "total_nanos",
        ] {
            assert!(back.get(key).is_some(), "missing {key}");
        }
        let ops = back.get("operators").and_then(Json::as_arr).unwrap();
        assert!(!ops.is_empty());
        for op in ops {
            for key in [
                "label",
                "depth",
                "opens",
                "tuples",
                "nanos",
                "self_nanos",
                "gauges",
            ] {
                assert!(op.get(key).is_some(), "operator missing {key}");
            }
        }
    }
}
