//! Minimal hand-rolled JSON: a value tree, a writer and a recursive
//! descent parser. Exists so observability exports (`--profile-json`,
//! bench result files) need no external serialization dependency; the
//! parser is primarily for round-trip tests and tooling that reads the
//! exports back.
//!
//! Objects preserve insertion order (stable output for diffing); numbers
//! are `f64` like the engine's own numeric domain.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers render without a fractional part).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Build an object from key/value pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Render with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_str(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Parse a JSON document (must consume all non-whitespace input).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError { pos: p.pos, what: "trailing input" });
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error: byte offset plus a static description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub pos: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError { pos: self.pos, what })
        }
    }

    fn literal(&mut self, lit: &str, what: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(JsonError { pos: self.pos, what })
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", "expected null").map(|()| Json::Null),
            Some(b't') => self.literal("true", "expected true").map(|()| Json::Bool(true)),
            Some(b'f') => self.literal("false", "expected false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError { pos: self.pos, what: "expected a value" }),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError { pos: self.pos, what: "expected , or ]" }),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected {")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected :")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(JsonError { pos: self.pos, what: "expected , or }" }),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError { pos: start, what: "invalid UTF-8" })?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or(JsonError { pos: self.pos, what: "unterminated escape" })?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.literal("\\u", "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(JsonError {
                                        pos: self.pos,
                                        what: "invalid low surrogate",
                                    });
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            s.push(
                                c.ok_or(JsonError { pos: self.pos, what: "invalid code point" })?,
                            );
                        }
                        _ => return Err(JsonError { pos: self.pos - 1, what: "bad escape" }),
                    }
                }
                _ => return Err(JsonError { pos: self.pos, what: "unterminated string" }),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError { pos: self.pos, what: "truncated \\u escape" });
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError { pos: self.pos, what: "bad \\u escape" })?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| JsonError { pos: self.pos, what: "bad \\u escape" })?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError { pos: start, what: "bad number" })?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { pos: start, what: "bad number" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", Json::Str("σ[a = \"x\"]".into())),
            ("n", Json::Num(42.0)),
            ("frac", Json::Num(1.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("items", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"σ[a = \"x\"]","n":42,"frac":1.5,"ok":true,"none":null,"items":[1,2]}"#
        );
        let p = v.pretty();
        assert!(p.contains("  \"n\": 42,\n"), "{p}");
    }

    #[test]
    fn parses_back_what_it_writes() {
        let v = Json::obj(vec![
            ("q", Json::Str("/a/b[c = 'x']\n\ttab \"quote\" \\ unicode σΥΠ".into())),
            ("nums", Json::Arr(vec![Json::Num(0.0), Json::Num(-3.25), Json::Num(1e18)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            ("nested", Json::obj(vec![("deep", Json::Arr(vec![Json::Bool(false)]))])),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        assert_eq!(Json::parse(r#""Aé😀""#).unwrap(), Json::Str("Aé😀".into()));
        assert_eq!(Json::parse(r#""\n\t\\\"""#).unwrap(), Json::Str("\n\t\\\"".into()));
        // \u escapes, BMP and a surrogate pair.
        assert_eq!(Json::parse("\"\\u0041\\u00e9\"").unwrap(), Json::Str("Aé".into()));
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"abc",
            "{\"a\" 1}",
            "[1]]",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escapes_control_chars_as_u_sequences() {
        // Every C0 control char must leave the writer as \uXXXX (or the
        // short escapes \n \r \t) — raw control bytes in a JSONL query
        // log would break line-oriented consumers.
        let all_controls: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let written = Json::Str(all_controls.clone()).to_string();
        for b in written.bytes() {
            assert!(b >= 0x20, "raw control byte {b:#04x} in {written:?}");
        }
        assert!(written.contains("\\u0000"));
        assert!(written.contains("\\u0001"));
        assert!(written.contains("\\u001f"));
        assert!(written.contains("\\n") || written.contains("\\u000a"));
        assert_eq!(Json::parse(&written).unwrap(), Json::Str(all_controls));
        // DEL (0x7f) is not a C0 control and passes through raw per JSON.
        assert_eq!(Json::Str("\u{7f}".into()).to_string(), "\"\u{7f}\"");
    }

    #[test]
    fn non_bmp_round_trips_both_spellings() {
        // Non-BMP chars: written raw (UTF-8), parsed back identically —
        // and the equivalent \u surrogate-pair spelling parses to the
        // same string.
        for s in ["😀", "𝄞 clef", "a😀b𝕏c", "🂡🂢🂣"] {
            let v = Json::Str(s.into());
            let written = v.to_string();
            assert!(!written.contains("\\u"), "non-BMP written raw: {written}");
            assert_eq!(Json::parse(&written).unwrap(), v);
        }
        assert_eq!(
            Json::parse("\"\\ud834\\udd1e\"").unwrap(),
            Json::Str("\u{1d11e}".into()),
            "surrogate-pair spelling of U+1D11E"
        );
        // A lone high surrogate is malformed, not replaced.
        assert!(Json::parse("\"\\ud834\"").is_err());
        assert!(Json::parse("\"\\ud834x\"").is_err());
    }

    #[test]
    fn nested_empty_containers_round_trip() {
        let v = Json::obj(vec![
            ("a", Json::Obj(vec![])),
            ("b", Json::Arr(vec![Json::Obj(vec![]), Json::Arr(vec![])])),
            ("c", Json::obj(vec![("inner", Json::obj(vec![("deepest", Json::Obj(vec![]))]))])),
        ]);
        let compact = v.to_string();
        assert_eq!(compact, r#"{"a":{},"b":[{},[]],"c":{"inner":{"deepest":{}}}}"#);
        assert_eq!(Json::parse(&compact).unwrap(), v);
        // Pretty form keeps empty containers parseable too.
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(Json::parse("[[]]").unwrap(), Json::Arr(vec![Json::Arr(vec![])]));
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 1, "b": "x", "c": [true]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_num), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert!(v.get("missing").is_none());
    }
}
