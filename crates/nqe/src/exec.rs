//! Executor: runs a physical query against a store, providing the
//! top-level execution context (context node, `$` variables, resource
//! governor) that binds the plan's free attributes (paper §2.2.2).

use std::collections::HashMap;

use xmlstore::{NodeId, XmlStore};

use algebra::{QueryError, QueryOutput, Tuple, Value};
use compiler::{compile_with_stats, PipelineError, ResourceLimits, TranslateOptions};

use crate::codegen::{build_physical, PhysicalQuery};
use crate::governor::{tuple_bytes, ChargeLedger, ResourceGovernor};

/// Shared read-only state available to every iterator and NVM program.
pub struct Runtime<'a> {
    /// The document store.
    pub store: &'a dyn XmlStore,
    /// `$` variable bindings.
    pub vars: &'a HashMap<String, Value>,
    /// The execution budget (memory/tuples/deadline/cancellation).
    pub gov: &'a ResourceGovernor,
}

/// Convert a drained storage fault into a typed query error.
fn storage_err(store: &dyn XmlStore) -> Option<QueryError> {
    store
        .take_storage_fault()
        .map(|f| QueryError::Storage { detail: f.message, io: f.is_io })
}

impl PhysicalQuery {
    /// Execute against `store` with `ctx` as the context node, without
    /// resource limits. An unlimited governor cannot trip, but the
    /// storage layer still can: an I/O failure or detected corruption
    /// while reading a paged store surfaces as [`QueryError::Storage`].
    ///
    /// A `PhysicalQuery` is bound to one store: node tests resolve
    /// interned names and memo tables key on node identities on first
    /// execution, so reuse the object only against the same store.
    pub fn execute(
        &mut self,
        store: &dyn XmlStore,
        vars: &HashMap<String, Value>,
        ctx: NodeId,
    ) -> Result<QueryOutput, QueryError> {
        let gov = ResourceGovernor::unlimited();
        self.execute_governed(store, vars, ctx, &gov)
    }

    /// Execute under a resource governor. Over-budget, timed-out and
    /// cancelled executions unwind cooperatively: iterators stop
    /// producing once the governor trips, the plan closes (releasing
    /// every transient charge), and the trip surfaces here as a typed
    /// [`QueryError`]. Storage faults (I/O failure or detected corruption
    /// in a paged store) unwind the same way: the store records the first
    /// fault and returns inert values, the tuple loop notices the trip,
    /// the plan closes, and the fault surfaces as
    /// [`QueryError::Storage`] with `transient_bytes() == 0`.
    pub fn execute_governed(
        &mut self,
        store: &dyn XmlStore,
        vars: &HashMap<String, Value>,
        ctx: NodeId,
        gov: &ResourceGovernor,
    ) -> Result<QueryOutput, QueryError> {
        let rt = Runtime { store, vars, gov };
        gov.check_now();
        // A fault left over from an earlier (already reported) execution
        // must not poison this one.
        store.take_storage_fault();
        match self {
            PhysicalQuery::Sequence { root, frame } => {
                let mut seed: Tuple = vec![Value::Null; frame.width];
                seed[frame.cn] = Value::Node(ctx);
                seed[frame.cp] = Value::Num(1.0);
                seed[frame.cs] = Value::Num(1.0);
                root.open(&rt, &seed);
                // The result accumulator is a materialisation like any
                // other: charge it so unbounded node-sets cannot evade
                // the budget by reaching the top of the plan.
                let mut ledger = ChargeLedger::new();
                let mut nodes: Vec<NodeId> = Vec::new();
                while gov.ok() && !store.storage_tripped() {
                    let Some(t) = root.next(&rt) else { break };
                    if let Some(n) = t[frame.cn].as_node() {
                        if !ledger.charge(gov, std::mem::size_of::<NodeId>() as u64) {
                            break;
                        }
                        nodes.push(n);
                    }
                }
                root.close(&rt);
                ledger.release_all(gov);
                if let Some(e) = gov.error() {
                    return Err(e);
                }
                // XPath 1.0 node-sets are unordered (paper §2.1); we
                // return document order for determinism.
                algebra::docorder::sort_dedup(&mut nodes, store);
                // Checked last: the document-order sort reads `order()`
                // and can itself hit a damaged page.
                if let Some(e) = storage_err(store) {
                    return Err(e);
                }
                Ok(QueryOutput::Nodes(nodes))
            }
            PhysicalQuery::Scalar { pred, frame, stats } => {
                let mut seed: Tuple = vec![Value::Null; frame.width];
                seed[frame.cn] = Value::Node(ctx);
                seed[frame.cp] = Value::Num(1.0);
                seed[frame.cs] = Value::Num(1.0);
                let t0 = stats.as_ref().map(|_| std::time::Instant::now());
                let value = pred.eval(&rt, &seed);
                if let (Some(stats), Some(t0)) = (stats, t0) {
                    let mut s = stats.lock();
                    s.nanos += t0.elapsed().as_nanos() as u64;
                    s.opens += 1;
                    s.tuples += 1;
                }
                if let Some(e) = gov.error() {
                    return Err(e);
                }
                let out = match value {
                    Value::Bool(b) => QueryOutput::Bool(b),
                    Value::Num(n) => QueryOutput::Num(n),
                    Value::Str(s) => QueryOutput::Str(s.to_string()),
                    Value::Node(n) => QueryOutput::Nodes(vec![n]),
                    Value::Null => QueryOutput::Str(String::new()),
                    Value::Seq(ts) => {
                        // Transient charge for inspecting the sequence —
                        // symmetric with the Sequence arm's accumulator.
                        let mut ledger = ChargeLedger::new();
                        let mut charged = 0u64;
                        for t in ts.iter() {
                            charged += tuple_bytes(t);
                        }
                        let fits = ledger.charge(gov, charged);
                        let mut nodes: Vec<NodeId> =
                            ts.iter().flat_map(|t| t.iter().filter_map(|v| v.as_node())).collect();
                        ledger.release_all(gov);
                        if !fits {
                            return Err(gov.error().expect("charge failed"));
                        }
                        algebra::docorder::sort_dedup(&mut nodes, store);
                        QueryOutput::Nodes(nodes)
                    }
                };
                if let Some(e) = storage_err(store) {
                    return Err(e);
                }
                Ok(out)
            }
        }
    }
}

/// One-stop evaluation: compile `query`, lower it, execute it with the
/// document node as context.
pub fn evaluate(
    store: &dyn XmlStore,
    query: &str,
    opts: &TranslateOptions,
) -> Result<QueryOutput, PipelineError> {
    evaluate_with(store, query, opts, store.root(), &HashMap::new())
}

/// Evaluation with an explicit context node and variable bindings.
pub fn evaluate_with(
    store: &dyn XmlStore,
    query: &str,
    opts: &TranslateOptions,
    ctx: NodeId,
    vars: &HashMap<String, Value>,
) -> Result<QueryOutput, PipelineError> {
    let stats = store.structural_index().map(|idx| idx.stats());
    let (compiled, _) = compile_with_stats(query, opts, stats)?;
    let mut phys = build_physical(&compiled);
    Ok(phys.execute(store, vars, ctx)?)
}

/// Evaluation under resource limits: compile, lower, and execute with a
/// fresh governor for `limits`. Budget trips surface as
/// [`PipelineError::Resource`].
pub fn evaluate_governed(
    store: &dyn XmlStore,
    query: &str,
    opts: &TranslateOptions,
    limits: &ResourceLimits,
    ctx: NodeId,
    vars: &HashMap<String, Value>,
) -> Result<QueryOutput, PipelineError> {
    let stats = store.structural_index().map(|idx| idx.stats());
    let (compiled, _) = compile_with_stats(query, opts, stats)?;
    let mut phys = build_physical(&compiled);
    let gov = ResourceGovernor::new(*limits);
    Ok(phys.execute_governed(store, vars, ctx, &gov)?)
}
