//! Executor: runs a physical query against a store, providing the
//! top-level execution context (context node, `$` variables) that binds
//! the plan's free attributes (paper §2.2.2).

use std::collections::HashMap;

use xmlstore::{NodeId, XmlStore};

use algebra::{QueryOutput, Tuple, Value};
use compiler::{compile, PipelineError, TranslateOptions};

use crate::codegen::{build_physical, PhysicalQuery};

/// Shared read-only state available to every iterator and NVM program.
pub struct Runtime<'a> {
    /// The document store.
    pub store: &'a dyn XmlStore,
    /// `$` variable bindings.
    pub vars: &'a HashMap<String, Value>,
}

impl PhysicalQuery {
    /// Execute against `store` with `ctx` as the context node.
    ///
    /// A `PhysicalQuery` is bound to one store: node tests resolve
    /// interned names and memo tables key on node identities on first
    /// execution, so reuse the object only against the same store.
    pub fn execute(
        &mut self,
        store: &dyn XmlStore,
        vars: &HashMap<String, Value>,
        ctx: NodeId,
    ) -> QueryOutput {
        let rt = Runtime { store, vars };
        match self {
            PhysicalQuery::Sequence { root, frame } => {
                let mut seed: Tuple = vec![Value::Null; frame.width];
                seed[frame.cn] = Value::Node(ctx);
                seed[frame.cp] = Value::Num(1.0);
                seed[frame.cs] = Value::Num(1.0);
                root.open(&rt, &seed);
                let mut nodes: Vec<NodeId> = Vec::new();
                while let Some(t) = root.next(&rt) {
                    if let Some(n) = t[frame.cn].as_node() {
                        nodes.push(n);
                    }
                }
                root.close();
                // XPath 1.0 node-sets are unordered (paper §2.1); we
                // return document order for determinism.
                nodes.sort_by_key(|&n| store.order(n));
                nodes.dedup();
                QueryOutput::Nodes(nodes)
            }
            PhysicalQuery::Scalar { pred, frame, stats } => {
                let mut seed: Tuple = vec![Value::Null; frame.width];
                seed[frame.cn] = Value::Node(ctx);
                seed[frame.cp] = Value::Num(1.0);
                seed[frame.cs] = Value::Num(1.0);
                let t0 = stats.as_ref().map(|_| std::time::Instant::now());
                let value = pred.eval(&rt, &seed);
                if let (Some(stats), Some(t0)) = (stats, t0) {
                    let mut s = stats.borrow_mut();
                    s.nanos += t0.elapsed().as_nanos() as u64;
                    s.opens += 1;
                    s.tuples += 1;
                }
                match value {
                    Value::Bool(b) => QueryOutput::Bool(b),
                    Value::Num(n) => QueryOutput::Num(n),
                    Value::Str(s) => QueryOutput::Str(s.to_string()),
                    Value::Node(n) => QueryOutput::Nodes(vec![n]),
                    Value::Null => QueryOutput::Str(String::new()),
                    Value::Seq(ts) => {
                        let mut nodes: Vec<NodeId> =
                            ts.iter().flat_map(|t| t.iter().filter_map(|v| v.as_node())).collect();
                        nodes.sort_by_key(|&n| store.order(n));
                        nodes.dedup();
                        QueryOutput::Nodes(nodes)
                    }
                }
            }
        }
    }
}

/// One-stop evaluation: compile `query`, lower it, execute it with the
/// document node as context.
pub fn evaluate(
    store: &dyn XmlStore,
    query: &str,
    opts: &TranslateOptions,
) -> Result<QueryOutput, PipelineError> {
    evaluate_with(store, query, opts, store.root(), &HashMap::new())
}

/// Evaluation with an explicit context node and variable bindings.
pub fn evaluate_with(
    store: &dyn XmlStore,
    query: &str,
    opts: &TranslateOptions,
    ctx: NodeId,
    vars: &HashMap<String, Value>,
) -> Result<QueryOutput, PipelineError> {
    let compiled = compile(query, opts)?;
    let mut phys = build_physical(&compiled);
    Ok(phys.execute(store, vars, ctx))
}
