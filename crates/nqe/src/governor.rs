//! The resource governor (DESIGN.md §11): one shared per-execution budget
//! that every materialising physical operator charges and every pipeline
//! loop ticks. Execution stays cooperative — there is no separate watchdog
//! thread; over-budget, timed-out and cancelled queries unwind through the
//! normal iterator protocol and surface a typed [`QueryError`] from the
//! executor instead of exhausting process memory or spinning forever.
//!
//! Charging model:
//!
//! * Operators that buffer tuples (Sort, Tmp^cs, MemoX recordings, ⋉/▷
//!   match-side materialisation, tokenizer fan-out, Π^D seen-sets, χ^mat
//!   caches, the executor's result accumulator) own a [`ChargeLedger`] and
//!   charge the estimated byte footprint of what they hold. Streamed
//!   tuples in flight between operators are *not* charged — only parked
//!   bytes count, which is what actually scales with the document.
//! * A failed charge is rolled back: it is not added to the usage counter,
//!   so the governor's high-water mark is exact (tests hand-compute it).
//! * Charges start *transient* and are released when the owning buffer is
//!   drained or the operator closes. Caches that survive re-opens (MemoX
//!   tables, χ^mat entries) are *committed*: still counted against the
//!   budget, but excluded from [`ResourceGovernor::transient_bytes`], so
//!   `transient_bytes() == 0` after the plan closes is a machine-checkable
//!   "no leaked temp state" invariant.
//! * Deadline and cancellation are observed at governor *ticks*, placed in
//!   every loop that can run unboundedly without returning a tuple. The
//!   wall clock and the atomic cancel token are only consulted every
//!   `tick_interval` ticks (default [`DEFAULT_TICK_INTERVAL`]), keeping
//!   the per-tuple cost to two relaxed atomic bumps.
//! * The governor is shared by every Exchange worker thread (DESIGN.md
//!   §14): all counters are atomics, a failed charge is *never applied*
//!   (a compare-and-swap loop rejects over-limit charges without touching
//!   the usage counter, so the high-water mark stays exact even under
//!   concurrency), and the first trip wins — later trips from other
//!   workers are dropped.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use algebra::{QueryError, Tuple, Value};
use compiler::ResourceLimits;

use crate::iter::{Gauge, GroupKey};

/// Default cadence of deadline/cancellation checks, in ticks.
pub const DEFAULT_TICK_INTERVAL: u32 = 64;

/// Deterministic fault injection for the differential test harness:
/// trip the memory budget at the Nth charge, or raise the cancellation
/// token at the Nth tick (both 1-based; `None` disables).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FailPoint {
    /// Fail the Nth `charge` call with [`QueryError::MemoryExceeded`].
    pub fail_at_alloc: Option<u64>,
    /// Raise the cancel token at the Nth `tick` call.
    pub cancel_at_tick: Option<u64>,
}

impl FailPoint {
    /// No injected faults.
    pub fn none() -> FailPoint {
        FailPoint::default()
    }
}

/// The shared per-execution budget. One governor serves every worker of a
/// parallel (Exchange) execution, so the counters are atomics; serial
/// plans pay only uncontended relaxed operations.
pub struct ResourceGovernor {
    limits: ResourceLimits,
    deadline: Option<Instant>,
    tick_interval: u64,
    cancel: Arc<AtomicBool>,
    failpoint: FailPoint,
    mem_used: AtomicU64,
    transient_used: AtomicU64,
    mem_peak: AtomicU64,
    charged_total: AtomicU64,
    tuples: AtomicU64,
    ticks: AtomicU64,
    allocs: AtomicU64,
    /// Fast-path mirror of `error.is_some()`; stored inside the `error`
    /// critical section so any thread that observes `tripped` and then
    /// locks `error` sees the winning error.
    tripped: AtomicBool,
    error: Mutex<Option<QueryError>>,
}

impl ResourceGovernor {
    /// Governor for `limits`; the deadline clock starts now.
    pub fn new(limits: ResourceLimits) -> ResourceGovernor {
        ResourceGovernor::with_failpoint(limits, FailPoint::none())
    }

    /// Governor with no limits (cancellation still works via the token).
    pub fn unlimited() -> ResourceGovernor {
        ResourceGovernor::new(ResourceLimits::unlimited())
    }

    /// Governor with injected faults (test harness).
    pub fn with_failpoint(limits: ResourceLimits, failpoint: FailPoint) -> ResourceGovernor {
        ResourceGovernor {
            deadline: limits.timeout.map(|t| Instant::now() + t),
            tick_interval: limits.tick_interval.unwrap_or(DEFAULT_TICK_INTERVAL).max(1) as u64,
            limits,
            cancel: Arc::new(AtomicBool::new(false)),
            failpoint,
            mem_used: AtomicU64::new(0),
            transient_used: AtomicU64::new(0),
            mem_peak: AtomicU64::new(0),
            charged_total: AtomicU64::new(0),
            tuples: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
            error: Mutex::new(None),
        }
    }

    /// The configured limits.
    pub fn limits(&self) -> &ResourceLimits {
        &self.limits
    }

    /// A handle that cancels this execution when stored `true` (safe to
    /// hand to another thread or a signal handler).
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        self.cancel.clone()
    }

    /// True until a limit trips.
    pub fn ok(&self) -> bool {
        !self.tripped.load(Ordering::Acquire)
    }

    /// The error that stopped execution, if any. The first trip wins —
    /// in a parallel execution, later trips from other workers are
    /// dropped.
    pub fn error(&self) -> Option<QueryError> {
        self.error.lock().clone()
    }

    fn trip(&self, e: QueryError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(e);
            self.tripped.store(true, Ordering::Release);
        }
    }

    /// Charge `bytes` against the memory budget. Returns `false` (and
    /// does *not* apply the charge) when the budget is exceeded or the
    /// governor already tripped — the caller must stop producing. An
    /// over-limit charge is rejected by the compare-and-swap loop before
    /// it is ever applied, so `mem_used`/`high_water` stay exact under
    /// concurrent workers.
    pub fn charge(&self, bytes: u64) -> bool {
        if self.tripped.load(Ordering::Acquire) {
            return false;
        }
        let n = self.allocs.fetch_add(1, Ordering::Relaxed) + 1;
        if self.failpoint.fail_at_alloc == Some(n) {
            let used = self.mem_used.load(Ordering::Relaxed);
            self.trip(QueryError::MemoryExceeded {
                limit: self.limits.max_memory_bytes.unwrap_or(used),
                requested: used.saturating_add(bytes.max(1)),
            });
            return false;
        }
        let mut cur = self.mem_used.load(Ordering::Relaxed);
        loop {
            let new_used = cur.saturating_add(bytes);
            if let Some(limit) = self.limits.max_memory_bytes {
                if new_used > limit {
                    self.trip(QueryError::MemoryExceeded { limit, requested: new_used });
                    return false;
                }
            }
            match self.mem_used.compare_exchange_weak(
                cur,
                new_used,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.transient_used.fetch_add(bytes, Ordering::Relaxed);
                    self.charged_total.fetch_add(bytes, Ordering::Relaxed);
                    self.mem_peak.fetch_max(new_used, Ordering::Relaxed);
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Count `n` newly materialised tuples against the tuple budget.
    pub fn charge_tuples(&self, n: u64) -> bool {
        if self.tripped.load(Ordering::Acquire) {
            return false;
        }
        let prev = self
            .tuples
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| Some(t.saturating_add(n)))
            .unwrap_or(0);
        let total = prev.saturating_add(n);
        if let Some(limit) = self.limits.max_tuples {
            if total > limit {
                self.trip(QueryError::TuplesExceeded { limit });
                return false;
            }
        }
        true
    }

    /// Return `bytes` to the budget (buffer drained or dropped).
    pub fn release(&self, bytes: u64) {
        let _ = self
            .mem_used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(bytes)));
        let _ = self
            .transient_used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(bytes)));
    }

    /// Reclassify `bytes` from transient to persistent: still held (memo
    /// tables survive re-opens) but no longer expected back at close.
    pub fn commit(&self, bytes: u64) {
        let _ = self
            .transient_used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(bytes)));
    }

    /// One cooperative scheduling point. Deadline and cancellation are
    /// examined every `tick_interval` ticks. Returns `false` when the
    /// caller must stop producing. In a parallel execution every worker
    /// ticks the same governor, so each worker observes deadline,
    /// cancellation and storage faults within one interval.
    pub fn tick(&self) -> bool {
        if self.tripped.load(Ordering::Acquire) {
            return false;
        }
        let n = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        if self.failpoint.cancel_at_tick == Some(n) {
            self.cancel.store(true, Ordering::Relaxed);
        }
        if n.is_multiple_of(self.tick_interval) {
            return self.check_now();
        }
        true
    }

    /// Immediate deadline/cancellation check (execution start, and the
    /// interval points of [`ResourceGovernor::tick`]).
    pub fn check_now(&self) -> bool {
        if self.tripped.load(Ordering::Acquire) {
            return false;
        }
        if self.cancel.load(Ordering::Relaxed) {
            self.trip(QueryError::Cancelled);
            return false;
        }
        if let Some(d) = self.deadline {
            if Instant::now() > d {
                let timeout_millis = self.limits.timeout.map(|t| t.as_millis() as u64).unwrap_or(0);
                self.trip(QueryError::DeadlineExceeded { timeout_millis });
                return false;
            }
        }
        true
    }

    /// Highest concurrent byte usage observed (exact: failed charges are
    /// never applied, so they cannot inflate it).
    pub fn high_water(&self) -> u64 {
        self.mem_peak.load(Ordering::Relaxed)
    }

    /// Cumulative bytes ever charged (never decreased by releases).
    pub fn charged_total(&self) -> u64 {
        self.charged_total.load(Ordering::Relaxed)
    }

    /// Bytes currently held against the budget.
    pub fn mem_used(&self) -> u64 {
        self.mem_used.load(Ordering::Relaxed)
    }

    /// Currently held bytes that have *not* been committed as persistent
    /// cache state. Zero after a plan closes cleanly — the "no leaked
    /// temp state" invariant the fault-injection tests assert.
    pub fn transient_bytes(&self) -> u64 {
        self.transient_used.load(Ordering::Relaxed)
    }

    /// Tuples counted against the tuple budget.
    pub fn tuples_charged(&self) -> u64 {
        self.tuples.load(Ordering::Relaxed)
    }

    /// Ticks observed (test observability).
    pub fn ticks_seen(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

/// Per-operator view of the shared budget: tracks what *this* operator
/// holds, its own high-water mark and its cumulative charges, and reports
/// them as profiler gauges (`mem_charged`, `mem_peak`) so EXPLAIN ANALYZE
/// attributes memory to operators.
#[derive(Debug, Default)]
pub struct ChargeLedger {
    held: u64,
    committed: u64,
    peak: u64,
    charged: u64,
}

impl ChargeLedger {
    /// Empty ledger.
    pub fn new() -> ChargeLedger {
        ChargeLedger::default()
    }

    /// Charge `bytes`; `false` means the governor tripped and nothing was
    /// applied.
    pub fn charge(&mut self, gov: &ResourceGovernor, bytes: u64) -> bool {
        if !gov.charge(bytes) {
            return false;
        }
        self.held += bytes;
        self.charged += bytes;
        let now = self.held + self.committed;
        if now > self.peak {
            self.peak = now;
        }
        true
    }

    /// Charge one materialised tuple: its byte estimate against the
    /// memory budget and one unit against the tuple budget.
    pub fn charge_tuple(&mut self, gov: &ResourceGovernor, t: &Tuple) -> bool {
        gov.charge_tuples(1) && self.charge(gov, tuple_bytes(t))
    }

    /// Release `bytes` of transient holdings (clamped to what is held).
    pub fn release(&mut self, gov: &ResourceGovernor, bytes: u64) {
        let b = bytes.min(self.held);
        self.held -= b;
        gov.release(b);
    }

    /// Release every transient byte this operator holds.
    pub fn release_all(&mut self, gov: &ResourceGovernor) {
        let b = std::mem::take(&mut self.held);
        gov.release(b);
    }

    /// Adopt another ledger's holdings without touching the governor:
    /// the bytes were already charged through `other` (Exchange workers
    /// charge through private ledgers that the coordinator absorbs after
    /// the join, so releases keep flowing through exactly one owner).
    pub fn absorb(&mut self, other: ChargeLedger) {
        self.held += other.held;
        self.committed += other.committed;
        self.charged += other.charged;
        let now = self.held + self.committed;
        if now > self.peak {
            self.peak = now;
        }
    }

    /// Commit every transient byte as persistent cache state (MemoX
    /// tables, χ^mat entries): still held, no longer released at close.
    pub fn commit_all(&mut self, gov: &ResourceGovernor) {
        let b = std::mem::take(&mut self.held);
        self.committed += b;
        gov.commit(b);
    }

    /// Bytes currently held (transient + committed).
    pub fn held(&self) -> u64 {
        self.held + self.committed
    }

    /// This operator's high-water mark.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Cumulative bytes charged.
    pub fn charged(&self) -> u64 {
        self.charged
    }

    /// Report the ledger as profiler gauges.
    pub fn gauges(&self, out: &mut Vec<Gauge>) {
        out.push(("mem_charged", self.charged));
        out.push(("mem_peak", self.peak));
    }
}

/// Estimated footprint of one value: the register slot itself plus any
/// heap payload (string bytes, nested sequences). Deterministic — the
/// accounting tests hand-compute expected budgets from it.
pub fn value_bytes(v: &Value) -> u64 {
    let base = std::mem::size_of::<Value>() as u64;
    match v {
        Value::Str(s) => base + s.len() as u64,
        Value::Seq(ts) => base + ts.iter().map(tuple_bytes).sum::<u64>(),
        _ => base,
    }
}

/// Estimated footprint of one tuple (register frame).
pub fn tuple_bytes(t: &Tuple) -> u64 {
    t.iter().map(value_bytes).sum()
}

/// Estimated footprint of one grouping key (Π^D seen-sets, memo keys).
pub fn group_key_bytes(k: &GroupKey) -> u64 {
    let base = std::mem::size_of::<GroupKey>() as u64;
    match k {
        GroupKey::Other(s) => base + s.len() as u64,
        _ => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_never_trips() {
        let gov = ResourceGovernor::unlimited();
        assert!(gov.charge(1 << 40));
        assert!(gov.charge_tuples(1 << 40));
        for _ in 0..1000 {
            assert!(gov.tick());
        }
        assert!(gov.ok());
        assert_eq!(gov.error(), None);
    }

    #[test]
    fn memory_trip_is_exact_and_rolled_back() {
        let limits = ResourceLimits::unlimited().with_max_memory(100);
        let gov = ResourceGovernor::new(limits);
        assert!(gov.charge(60));
        assert!(gov.charge(40), "exactly at the limit is fine");
        assert!(!gov.charge(1), "one past the limit trips");
        assert_eq!(gov.error(), Some(QueryError::MemoryExceeded { limit: 100, requested: 101 }));
        assert_eq!(gov.mem_used(), 100, "failed charge must be rolled back");
        assert_eq!(gov.high_water(), 100, "peak unaffected by the failed charge");
        assert!(!gov.charge(0), "tripped governor refuses everything");
        assert!(!gov.tick());
    }

    #[test]
    fn release_and_commit_classification() {
        let gov = ResourceGovernor::unlimited();
        assert!(gov.charge(70));
        assert_eq!(gov.transient_bytes(), 70);
        gov.commit(30);
        assert_eq!(gov.transient_bytes(), 40);
        assert_eq!(gov.mem_used(), 70, "commit keeps bytes held");
        gov.release(40);
        assert_eq!(gov.transient_bytes(), 0);
        assert_eq!(gov.mem_used(), 30);
        assert_eq!(gov.high_water(), 70);
        assert_eq!(gov.charged_total(), 70);
    }

    #[test]
    fn tuple_budget() {
        let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_tuples(3));
        assert!(gov.charge_tuples(2));
        assert!(gov.charge_tuples(1));
        assert!(!gov.charge_tuples(1));
        assert_eq!(gov.error(), Some(QueryError::TuplesExceeded { limit: 3 }));
    }

    #[test]
    fn cancellation_observed_within_one_interval() {
        let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_tick_interval(8));
        let handle = gov.cancel_handle();
        assert!(gov.tick());
        handle.store(true, std::sync::atomic::Ordering::Relaxed);
        let mut survived = 0;
        while gov.tick() {
            survived += 1;
            assert!(survived <= 8, "cancellation must land within one interval");
        }
        assert_eq!(gov.error(), Some(QueryError::Cancelled));
    }

    #[test]
    fn deadline_trips() {
        let gov = ResourceGovernor::new(
            ResourceLimits::unlimited()
                .with_timeout(Duration::from_millis(0))
                .with_tick_interval(1),
        );
        std::thread::sleep(Duration::from_millis(2));
        assert!(!gov.tick());
        assert_eq!(gov.error(), Some(QueryError::DeadlineExceeded { timeout_millis: 0 }));
    }

    #[test]
    fn failpoint_alloc() {
        let gov = ResourceGovernor::with_failpoint(
            ResourceLimits::unlimited(),
            FailPoint { fail_at_alloc: Some(3), cancel_at_tick: None },
        );
        assert!(gov.charge(10));
        assert!(gov.charge(10));
        assert!(!gov.charge(10), "third charge injected to fail");
        assert!(matches!(gov.error(), Some(QueryError::MemoryExceeded { .. })));
        assert_eq!(gov.mem_used(), 20, "injected failure charges nothing");
    }

    #[test]
    fn failpoint_cancel_tick() {
        let gov = ResourceGovernor::with_failpoint(
            ResourceLimits::unlimited().with_tick_interval(4),
            FailPoint { fail_at_alloc: None, cancel_at_tick: Some(5) },
        );
        let mut stopped_at = None;
        for i in 1..=64 {
            if !gov.tick() {
                stopped_at = Some(i);
                break;
            }
        }
        assert_eq!(gov.error(), Some(QueryError::Cancelled));
        // Token raised at tick 5; the next interval boundary is tick 8.
        assert_eq!(stopped_at, Some(8));
    }

    #[test]
    fn ledger_peak_and_gauges() {
        let gov = ResourceGovernor::unlimited();
        let mut ledger = ChargeLedger::new();
        assert!(ledger.charge(&gov, 50));
        assert!(ledger.charge(&gov, 30));
        ledger.release(&gov, 60);
        assert!(ledger.charge(&gov, 10));
        assert_eq!(ledger.peak(), 80);
        assert_eq!(ledger.charged(), 90);
        assert_eq!(ledger.held(), 30);
        let mut gauges = Vec::new();
        ledger.gauges(&mut gauges);
        assert!(gauges.contains(&("mem_charged", 90)));
        assert!(gauges.contains(&("mem_peak", 80)));
        ledger.release_all(&gov);
        assert_eq!(gov.mem_used(), 0);
        assert_eq!(gov.transient_bytes(), 0);
    }

    #[test]
    fn byte_estimators() {
        let slot = std::mem::size_of::<Value>() as u64;
        assert_eq!(value_bytes(&Value::Null), slot);
        assert_eq!(value_bytes(&Value::Num(1.0)), slot);
        assert_eq!(value_bytes(&Value::Str("abcd".into())), slot + 4);
        let t: Tuple = vec![Value::Null, Value::Num(2.0), Value::Str("xy".into())];
        assert_eq!(tuple_bytes(&t), 3 * slot + 2);
        let seq = Value::Seq(std::sync::Arc::new(vec![t]));
        assert_eq!(value_bytes(&seq), slot + 3 * slot + 2);
        let key = std::mem::size_of::<GroupKey>() as u64;
        assert_eq!(group_key_bytes(&GroupKey::Null), key);
        assert_eq!(group_key_bytes(&GroupKey::Other("abc".into())), key + 3);
    }
}
