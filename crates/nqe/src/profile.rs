//! Physical-operator profiling: per-iterator open/tuple counters, the
//! instrumentation behind the paper's "profiling NQE has provided us with
//! hints" (§6.2). Enabled by building the plan with
//! [`crate::codegen::build_physical_profiled`]; every iterator is wrapped
//! by a counting adapter, so profiling costs nothing when off.

use std::cell::RefCell;
use std::rc::Rc;

use algebra::Tuple;

use crate::exec::Runtime;
use crate::iter::PhysIter;

/// Counters of one physical operator.
#[derive(Debug, Default)]
pub struct OpStats {
    /// `open()` calls (d-join dependents re-open per left tuple).
    pub opens: u64,
    /// Tuples produced.
    pub tuples: u64,
}

/// One profiled operator: label, plan depth, counters.
pub struct ProfileEntry {
    /// Operator label in the paper's notation (σ, Υ, Π^D, …).
    pub label: String,
    /// Depth in the (logical) plan tree.
    pub depth: usize,
    /// Shared counters, updated by the wrapper during execution.
    pub stats: Rc<RefCell<OpStats>>,
}

/// The profile of a whole plan, in plan order (pre-order).
#[derive(Default)]
pub struct Profile {
    /// Entries in plan order.
    pub entries: Vec<ProfileEntry>,
}

impl Profile {
    /// Render as an indented table.
    pub fn report(&self) -> String {
        let mut out = String::from("opens      tuples     operator\n");
        for e in &self.entries {
            let s = e.stats.borrow();
            out.push_str(&format!(
                "{:<10} {:<10} {}{}\n",
                s.opens,
                s.tuples,
                "  ".repeat(e.depth),
                e.label
            ));
        }
        out
    }

    /// Total tuples produced across all operators (a work measure).
    pub fn total_tuples(&self) -> u64 {
        self.entries.iter().map(|e| e.stats.borrow().tuples).sum()
    }
}

/// Counting adapter around any physical iterator.
pub struct ProfiledIter {
    inner: Box<dyn PhysIter>,
    stats: Rc<RefCell<OpStats>>,
}

impl ProfiledIter {
    /// Wrap `inner`, registering counters shared with a [`Profile`].
    pub fn new(inner: Box<dyn PhysIter>, stats: Rc<RefCell<OpStats>>) -> ProfiledIter {
        ProfiledIter { inner, stats }
    }
}

impl PhysIter for ProfiledIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.stats.borrow_mut().opens += 1;
        self.inner.open(rt, seed);
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        let t = self.inner.next(rt);
        if t.is_some() {
            self.stats.borrow_mut().tuples += 1;
        }
        t
    }

    fn close(&mut self) {
        self.inner.close();
    }
}
