//! Physical-operator profiling: per-iterator wall-clock timings,
//! open/tuple counters and operator-specific gauges — the
//! instrumentation behind the paper's "profiling NQE has provided us
//! with hints" (§6.2). Enabled by building the plan with
//! [`crate::codegen::build_physical_profiled`]; every iterator is
//! wrapped by a timing/counting adapter, so profiling costs nothing
//! when off (the untimed [`crate::codegen::build_physical`] path is
//! allocation-identical to before instrumentation existed) and one
//! `Instant` pair per call when on.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use algebra::Tuple;

use crate::exec::Runtime;
use crate::iter::{Gauge, ParallelStats, PhysIter};

/// Shared, thread-safe counters of one physical operator. `Arc<Mutex<…>>`
/// rather than `Rc<RefCell<…>>` because Exchange worker replicas carry
/// their own counter shards across threads.
pub type SharedStats = Arc<Mutex<OpStats>>;

/// Counters of one physical operator.
#[derive(Debug, Default)]
pub struct OpStats {
    /// `open()` calls (d-join dependents re-open per left tuple).
    pub opens: u64,
    /// Tuples produced.
    pub tuples: u64,
    /// Cumulative wall-clock nanoseconds spent inside this operator's
    /// subtree (its `open`/`next`/`close` calls, children included —
    /// children run nested within the parent's calls).
    pub nanos: u64,
    /// Operator-specific gauges (MemoX hits/misses, Tmp^cs
    /// materialisation, Sort input sizes, d-join re-opens, …), refreshed
    /// every time the operator is closed.
    pub gauges: Vec<Gauge>,
}

impl OpStats {
    /// Accumulate `other` into `self`: counters add, gauges add by name
    /// (appending names `self` has not seen). Used to fold per-worker
    /// Exchange shards into the displayed profile row.
    pub fn accumulate(&mut self, other: &OpStats) {
        self.opens += other.opens;
        self.tuples += other.tuples;
        self.nanos += other.nanos;
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, cur)) => *cur += v,
                None => self.gauges.push((name, *v)),
            }
        }
    }
}

/// One profiled operator: label, plan depth, counters.
pub struct ProfileEntry {
    /// Operator label in the paper's notation (σ, Υ, Π^D, …).
    pub label: String,
    /// Depth in the (logical) plan tree; nested predicate plans hang one
    /// level below the operator whose subscript evaluates them.
    pub depth: usize,
    /// Shared counters, updated by the wrapper during execution.
    pub stats: SharedStats,
}

/// The profile of a whole plan, in plan order (pre-order).
#[derive(Default)]
pub struct Profile {
    /// Entries in plan order.
    pub entries: Vec<ProfileEntry>,
    /// Per-Exchange parallel execution statistics (workers, partitions,
    /// per-worker tuple counts, merge time), one entry per Exchange
    /// operator in plan order. Empty for serial plans.
    pub parallel: Vec<Arc<Mutex<ParallelStats>>>,
}

impl Profile {
    /// Render as an indented table with computed column widths (counters
    /// of any magnitude stay aligned).
    pub fn report(&self) -> String {
        let mut rows: Vec<[String; 5]> = Vec::with_capacity(self.entries.len() + 1);
        rows.push([
            "opens".into(),
            "tuples".into(),
            "total".into(),
            "self".into(),
            "operator".into(),
        ]);
        let self_nanos = self.self_nanos();
        for (e, self_ns) in self.entries.iter().zip(&self_nanos) {
            let s = e.stats.lock();
            let mut label = format!("{}{}", "  ".repeat(e.depth), e.label);
            if !s.gauges.is_empty() {
                let gauges: Vec<String> =
                    s.gauges.iter().map(|(k, v)| format!("{k}={v}")).collect();
                label.push_str(&format!("  {{{}}}", gauges.join(" ")));
            }
            rows.push([
                s.opens.to_string(),
                s.tuples.to_string(),
                fmt_nanos(s.nanos),
                fmt_nanos(*self_ns),
                label,
            ]);
        }
        let width = |col: usize| rows.iter().map(|r| r[col].chars().count()).max().unwrap_or(0);
        let widths = [width(0), width(1), width(2), width(3)];
        let mut out = String::new();
        for row in &rows {
            for (cell, w) in row.iter().zip(widths) {
                out.push_str(&format!("{cell:<w$}  "));
            }
            out.push_str(&row[4]);
            out.push('\n');
        }
        out
    }

    /// Total tuples produced across all operators (a work measure).
    pub fn total_tuples(&self) -> u64 {
        self.entries.iter().map(|e| e.stats.lock().tuples).sum()
    }

    /// Total wall-clock time attributed to the plan: the sum of the
    /// root operators' cumulative times (a plan has several roots only
    /// for scalar queries with multiple nested sub-plans).
    pub fn total_time(&self) -> Duration {
        let min_depth = self.entries.iter().map(|e| e.depth).min().unwrap_or(0);
        Duration::from_nanos(
            self.entries
                .iter()
                .filter(|e| e.depth == min_depth)
                .map(|e| e.stats.lock().nanos)
                .sum(),
        )
    }

    /// Deepest operator nesting level (0-based; 0 for a single operator).
    pub fn max_depth(&self) -> usize {
        self.entries.iter().map(|e| e.depth).max().unwrap_or(0)
    }

    /// Per-entry *self* time in nanoseconds: the cumulative time minus
    /// the cumulative time of direct children (which run nested inside
    /// the parent's calls). Clamped at zero against timer jitter.
    pub fn self_nanos(&self) -> Vec<u64> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                let mut children_nanos = 0u64;
                for e in &self.entries[i + 1..] {
                    if e.depth <= entry.depth {
                        break;
                    }
                    if e.depth == entry.depth + 1 {
                        children_nanos += e.stats.lock().nanos;
                    }
                }
                entry.stats.lock().nanos.saturating_sub(children_nanos)
            })
            .collect()
    }
}

/// Human format for a nanosecond count (`1.23ms`, `45.6µs`, `789ns`) —
/// shared with the compile-phase trace.
pub use compiler::trace::fmt_nanos;

/// Timing/counting adapter around any physical iterator.
pub struct ProfiledIter {
    inner: Box<dyn PhysIter>,
    stats: SharedStats,
}

impl ProfiledIter {
    /// Wrap `inner`, registering counters shared with a [`Profile`].
    pub fn new(inner: Box<dyn PhysIter>, stats: SharedStats) -> ProfiledIter {
        ProfiledIter { inner, stats }
    }
}

impl PhysIter for ProfiledIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        let t0 = Instant::now();
        self.inner.open(rt, seed);
        let mut s = self.stats.lock();
        s.nanos += t0.elapsed().as_nanos() as u64;
        s.opens += 1;
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        let t0 = Instant::now();
        let t = self.inner.next(rt);
        let mut s = self.stats.lock();
        s.nanos += t0.elapsed().as_nanos() as u64;
        if t.is_some() {
            s.tuples += 1;
        }
        t
    }

    fn close(&mut self, rt: &Runtime<'_>) {
        let t0 = Instant::now();
        self.inner.close(rt);
        let mut s = self.stats.lock();
        s.nanos += t0.elapsed().as_nanos() as u64;
        // Refresh the operator's gauges: caches and materialisation
        // counters survive re-opens, so the values at the last close are
        // the final ones.
        s.gauges.clear();
        let mut gauges = std::mem::take(&mut s.gauges);
        drop(s);
        self.inner.gauges(&mut gauges);
        self.stats.lock().gauges = gauges;
    }

    // Deliberately no `gauges` override: when an operator compiles to a
    // pass-through (an aliased Π), its profile wrapper directly wraps the
    // child's wrapper, and delegating would double-report the child's
    // gauges on the parent's row.
}
