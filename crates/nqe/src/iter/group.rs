//! Materialising operators: duplicate elimination, document-order sort,
//! the context-size operator Tmp^cs/Tmp^cs_c (§5.2.4), the MemoX
//! sequence memo (§4.2.2) and the memoizing map χ^mat (§4.3.2).

use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

use algebra::attrmgr::Slot;
use algebra::{Tuple, Value};

use crate::exec::Runtime;
use crate::iter::{CompiledPred, Gauge, GroupKey, PhysIter};

/// Π^D_a — duplicate elimination on one attribute, keeping the first
/// occurrence and all other attributes.
pub struct DedupIter {
    input: Box<dyn PhysIter>,
    slot: Slot,
    seen: HashSet<GroupKey>,
    /// Statistics: input tuples dropped as duplicates (all opens).
    pub dropped: u64,
}

impl DedupIter {
    /// New duplicate elimination.
    pub fn new(input: Box<dyn PhysIter>, slot: Slot) -> DedupIter {
        DedupIter { input, slot, seen: HashSet::new(), dropped: 0 }
    }
}

impl PhysIter for DedupIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.input.open(rt, seed);
        self.seen.clear();
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        loop {
            let t = self.input.next(rt)?;
            let key = GroupKey::of(t.get(self.slot).unwrap_or(&Value::Null), rt);
            if self.seen.insert(key) {
                return Some(t);
            }
            self.dropped += 1;
        }
    }

    fn close(&mut self) {
        self.input.close();
    }

    fn gauges(&self, out: &mut Vec<Gauge>) {
        out.push(("dup_dropped", self.dropped));
    }
}

/// Sort_a — materialise and sort by document order of the node attribute
/// (filter expressions with positional predicates, §3.4.2). Stable; tuples
/// with unbound attributes sort last.
pub struct SortIter {
    input: Box<dyn PhysIter>,
    slot: Slot,
    buffer: Option<Vec<Tuple>>,
    pos: usize,
    /// Statistics: total tuples materialised for sorting (all opens).
    pub sorted_tuples: u64,
    /// Statistics: number of sort materialisations (one per consumed
    /// open).
    pub sort_runs: u64,
}

impl SortIter {
    /// New sort.
    pub fn new(input: Box<dyn PhysIter>, slot: Slot) -> SortIter {
        SortIter {
            input,
            slot,
            buffer: None,
            pos: 0,
            sorted_tuples: 0,
            sort_runs: 0,
        }
    }
}

impl PhysIter for SortIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.input.open(rt, seed);
        self.buffer = None;
        self.pos = 0;
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        if self.buffer.is_none() {
            let mut buf = Vec::new();
            while let Some(t) = self.input.next(rt) {
                buf.push(t);
            }
            self.input.close();
            self.sorted_tuples += buf.len() as u64;
            self.sort_runs += 1;
            let slot = self.slot;
            buf.sort_by_key(|t| {
                t.get(slot).and_then(|v| v.as_node()).map_or(u64::MAX, |n| rt.store.order(n))
            });
            self.buffer = Some(buf);
        }
        let buf = self.buffer.as_mut().expect("filled above");
        if self.pos < buf.len() {
            let t = std::mem::take(&mut buf[self.pos]);
            self.pos += 1;
            Some(t)
        } else {
            None
        }
    }

    fn close(&mut self) {
        self.buffer = None;
        self.pos = 0;
    }

    fn gauges(&self, out: &mut Vec<Gauge>) {
        out.push(("sort_input", self.sorted_tuples));
        out.push(("sort_runs", self.sort_runs));
    }
}

/// Tmp^cs / Tmp^cs_c (paper §5.2.4): materialise one context group at a
/// time, annotate every tuple of the group with the context size, replay.
/// A single implementation covers both variants — `group = None` treats
/// the whole input as one context.
pub struct TmpCsIter {
    input: Box<dyn PhysIter>,
    cs: Slot,
    group: Option<Slot>,
    buf: VecDeque<Tuple>,
    lookahead: Option<Tuple>,
    exhausted: bool,
    /// Statistics: total tuples materialised into group buffers.
    pub materialized: u64,
    /// Statistics: number of context groups materialised.
    pub groups: u64,
}

impl TmpCsIter {
    /// New context-size operator.
    pub fn new(input: Box<dyn PhysIter>, cs: Slot, group: Option<Slot>) -> TmpCsIter {
        TmpCsIter {
            input,
            cs,
            group,
            buf: VecDeque::new(),
            lookahead: None,
            exhausted: false,
            materialized: 0,
            groups: 0,
        }
    }

    fn fill_group(&mut self, rt: &Runtime<'_>) {
        let first = match self.lookahead.take() {
            Some(t) => Some(t),
            None => self.input.next(rt),
        };
        let Some(first) = first else {
            self.exhausted = true;
            return;
        };
        let group_key =
            self.group.map(|slot| GroupKey::of(first.get(slot).unwrap_or(&Value::Null), rt));
        let mut group = vec![first];
        loop {
            match self.input.next(rt) {
                None => {
                    self.exhausted = true;
                    break;
                }
                Some(t) => {
                    let same = match (&group_key, self.group) {
                        (Some(k), Some(slot)) => {
                            &GroupKey::of(t.get(slot).unwrap_or(&Value::Null), rt) == k
                        }
                        _ => true,
                    };
                    if same {
                        group.push(t);
                    } else {
                        self.lookahead = Some(t);
                        break;
                    }
                }
            }
        }
        let cs = Value::Num(group.len() as f64);
        self.materialized += group.len() as u64;
        self.groups += 1;
        for mut t in group {
            t[self.cs] = cs.clone();
            self.buf.push_back(t);
        }
    }
}

impl PhysIter for TmpCsIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.input.open(rt, seed);
        self.buf.clear();
        self.lookahead = None;
        self.exhausted = false;
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        loop {
            if let Some(t) = self.buf.pop_front() {
                return Some(t);
            }
            if self.exhausted && self.lookahead.is_none() {
                return None;
            }
            self.fill_group(rt);
            if self.buf.is_empty() && self.exhausted && self.lookahead.is_none() {
                return None;
            }
        }
    }

    fn close(&mut self) {
        self.input.close();
        self.buf.clear();
        self.lookahead = None;
    }

    fn gauges(&self, out: &mut Vec<Gauge>) {
        out.push(("materialized", self.materialized));
        out.push(("groups", self.groups));
    }
}

/// 𝔐 — MemoX (§4.2.2): memoise the producer's tuple sequence keyed by
/// the free variable (context node) bound at `open`. A cache hit replays
/// the stored sequence without engaging the producer. Partially consumed
/// evaluations are not cached (early exit must stay correct).
pub struct MemoXIter {
    input: Box<dyn PhysIter>,
    key: Slot,
    table: HashMap<GroupKey, Rc<Vec<Tuple>>>,
    mode: MemoMode,
    /// Statistics: cache hits (observable for tests/ablations).
    pub hits: u64,
    /// Statistics: cache misses.
    pub misses: u64,
    /// Statistics: total tuples held by the memo table.
    pub stored_tuples: u64,
}

enum MemoMode {
    Idle,
    Replay { seq: Rc<Vec<Tuple>>, pos: usize },
    Record { key: GroupKey, acc: Vec<Tuple> },
}

impl MemoXIter {
    /// New MemoX.
    pub fn new(input: Box<dyn PhysIter>, key: Slot) -> MemoXIter {
        MemoXIter {
            input,
            key,
            table: HashMap::new(),
            mode: MemoMode::Idle,
            hits: 0,
            misses: 0,
            stored_tuples: 0,
        }
    }
}

impl PhysIter for MemoXIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        let key = GroupKey::of(seed.get(self.key).unwrap_or(&Value::Null), rt);
        if let Some(seq) = self.table.get(&key) {
            self.hits += 1;
            self.mode = MemoMode::Replay { seq: seq.clone(), pos: 0 };
        } else {
            self.misses += 1;
            self.input.open(rt, seed);
            self.mode = MemoMode::Record { key, acc: Vec::new() };
        }
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        match &mut self.mode {
            MemoMode::Idle => None,
            MemoMode::Replay { seq, pos } => {
                let t = seq.get(*pos).cloned();
                if t.is_some() {
                    *pos += 1;
                }
                t
            }
            MemoMode::Record { key, acc } => match self.input.next(rt) {
                Some(t) => {
                    acc.push(t.clone());
                    Some(t)
                }
                None => {
                    let key = key.clone();
                    let acc = std::mem::take(acc);
                    self.stored_tuples += acc.len() as u64;
                    self.table.insert(key, Rc::new(acc));
                    self.mode = MemoMode::Idle;
                    None
                }
            },
        }
    }

    fn close(&mut self) {
        // A close before exhaustion discards the partial recording.
        if matches!(self.mode, MemoMode::Record { .. }) {
            self.input.close();
        }
        self.mode = MemoMode::Idle;
    }

    fn gauges(&self, out: &mut Vec<Gauge>) {
        out.push(("memo_hits", self.hits));
        out.push(("memo_misses", self.misses));
        out.push(("memo_entries", self.table.len() as u64));
        out.push(("memo_tuples", self.stored_tuples));
    }
}

/// χ^mat — memoizing map for expensive predicate clauses (§4.3.2, after
/// Hellerstein & Naughton): caches the subscript value per key attribute.
pub struct MemoMapIter {
    input: Box<dyn PhysIter>,
    out: Slot,
    key: Slot,
    expr: CompiledPred,
    cache: HashMap<GroupKey, Value>,
    /// Statistics: cache hits.
    pub hits: u64,
    /// Statistics: cache misses (subscript evaluations).
    pub misses: u64,
}

impl MemoMapIter {
    /// New memoizing map.
    pub fn new(input: Box<dyn PhysIter>, out: Slot, key: Slot, expr: CompiledPred) -> MemoMapIter {
        MemoMapIter {
            input,
            out,
            key,
            expr,
            cache: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }
}

impl PhysIter for MemoMapIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.input.open(rt, seed);
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        let mut t = self.input.next(rt)?;
        let key = GroupKey::of(t.get(self.key).unwrap_or(&Value::Null), rt);
        let v = match self.cache.get(&key) {
            Some(v) => {
                self.hits += 1;
                v.clone()
            }
            None => {
                self.misses += 1;
                let v = self.expr.eval(rt, &t);
                self.cache.insert(key, v.clone());
                v
            }
        };
        t[self.out] = v;
        Some(t)
    }

    fn close(&mut self) {
        self.input.close();
    }

    fn gauges(&self, out: &mut Vec<Gauge>) {
        out.push(("memo_hits", self.hits));
        out.push(("memo_misses", self.misses));
        out.push(("memo_entries", self.cache.len() as u64));
    }
}
