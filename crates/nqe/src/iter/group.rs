//! Materialising operators: duplicate elimination, document-order sort,
//! the context-size operator Tmp^cs/Tmp^cs_c (§5.2.4), the MemoX
//! sequence memo (§4.2.2) and the memoizing map χ^mat (§4.3.2).
//!
//! Every buffer here is charged against the runtime's resource governor
//! (DESIGN.md §11): tuples are charged as they are parked and released as
//! they are handed downstream or the operator closes; memo/cache state
//! that survives re-opens is committed as persistent instead of released.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use algebra::attrmgr::Slot;
use algebra::{Tuple, Value};

use crate::exec::Runtime;
use crate::governor::{group_key_bytes, tuple_bytes, value_bytes, ChargeLedger};
use crate::iter::{CompiledPred, Gauge, GroupKey, PhysIter};

/// Π^D_a — duplicate elimination on one attribute, keeping the first
/// occurrence and all other attributes.
///
/// Node-valued keys on indexed stores use a compact bitset over document
/// order ranks — one governor charge of `⌈n/64⌉` words when the first
/// node key arrives — instead of a `HashSet` entry per distinct node.
/// Null/scalar keys (and nodes a store cannot rank) keep the hash set.
pub struct DedupIter {
    input: Box<dyn PhysIter>,
    slot: Slot,
    seen: HashSet<GroupKey>,
    /// Rank bitset, lazily sized from the index on first node key.
    bits: Option<Vec<u64>>,
    ledger: ChargeLedger,
    /// Statistics: input tuples dropped as duplicates (all opens).
    pub dropped: u64,
    /// Statistics: distinct keys recorded in the rank bitset (all opens).
    pub bitset_keys: u64,
    /// Statistics: distinct keys recorded in the hash set (all opens).
    pub hash_keys: u64,
}

impl DedupIter {
    /// New duplicate elimination.
    pub fn new(input: Box<dyn PhysIter>, slot: Slot) -> DedupIter {
        DedupIter {
            input,
            slot,
            seen: HashSet::new(),
            bits: None,
            ledger: ChargeLedger::new(),
            dropped: 0,
            bitset_keys: 0,
            hash_keys: 0,
        }
    }
}

impl PhysIter for DedupIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.input.open(rt, seed);
        self.seen.clear();
        self.bits = None;
        self.ledger.release_all(rt.gov);
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        loop {
            if !rt.gov.tick() {
                return None;
            }
            let t = self.input.next(rt)?;
            let rank = t
                .get(self.slot)
                .and_then(|v| v.as_node())
                .and_then(|n| rt.store.structural_index().and_then(|idx| idx.rank_of(n)));
            if let Some(rank) = rank {
                if self.bits.is_none() {
                    let words = rt.store.structural_index().map_or(0, |idx| idx.len()).div_ceil(64);
                    if !self.ledger.charge(rt.gov, (words * 8) as u64) {
                        return None;
                    }
                    self.bits = Some(vec![0u64; words]);
                }
                let bits = self.bits.as_mut().expect("allocated above");
                let (word, bit) = ((rank / 64) as usize, rank % 64);
                if bits[word] & (1 << bit) == 0 {
                    bits[word] |= 1 << bit;
                    self.bitset_keys += 1;
                    return Some(t);
                }
            } else {
                let key = GroupKey::of(t.get(self.slot).unwrap_or(&Value::Null), rt);
                let key_bytes = group_key_bytes(&key);
                if self.seen.insert(key) {
                    if !self.ledger.charge(rt.gov, key_bytes) {
                        return None;
                    }
                    self.hash_keys += 1;
                    return Some(t);
                }
            }
            self.dropped += 1;
        }
    }

    fn close(&mut self, rt: &Runtime<'_>) {
        self.input.close(rt);
        self.seen.clear();
        self.bits = None;
        self.ledger.release_all(rt.gov);
    }

    fn gauges(&self, out: &mut Vec<Gauge>) {
        out.push(("dup_dropped", self.dropped));
        out.push(("bitset_keys", self.bitset_keys));
        out.push(("hash_keys", self.hash_keys));
        self.ledger.gauges(out);
    }
}

/// Sort_a — materialise and sort by document order of the node attribute
/// (filter expressions with positional predicates, §3.4.2). Stable; tuples
/// with unbound attributes sort last.
pub struct SortIter {
    input: Box<dyn PhysIter>,
    slot: Slot,
    buffer: Option<Vec<Tuple>>,
    pos: usize,
    ledger: ChargeLedger,
    /// Statistics: total tuples materialised for sorting (all opens).
    pub sorted_tuples: u64,
    /// Statistics: number of sort materialisations (one per consumed
    /// open).
    pub sort_runs: u64,
}

impl SortIter {
    /// New sort.
    pub fn new(input: Box<dyn PhysIter>, slot: Slot) -> SortIter {
        SortIter {
            input,
            slot,
            buffer: None,
            pos: 0,
            ledger: ChargeLedger::new(),
            sorted_tuples: 0,
            sort_runs: 0,
        }
    }
}

impl PhysIter for SortIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.input.open(rt, seed);
        self.buffer = None;
        self.pos = 0;
        self.ledger.release_all(rt.gov);
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        if !rt.gov.ok() {
            return None;
        }
        if self.buffer.is_none() {
            let mut buf = Vec::new();
            while let Some(t) = self.input.next(rt) {
                if !self.ledger.charge_tuple(rt.gov, &t) {
                    break;
                }
                buf.push(t);
            }
            self.input.close(rt);
            if !rt.gov.ok() {
                return None;
            }
            self.sorted_tuples += buf.len() as u64;
            self.sort_runs += 1;
            let slot = self.slot;
            // Decorate-sort-undecorate: one key extraction per tuple
            // (index ranks where available, `order()` otherwise), then
            // an unstable integer sort on (key, input position) — the
            // position tiebreak reproduces the stable order exactly
            // without store calls inside the comparator.
            let keys = algebra::DocOrderKeys::new(rt.store);
            let mut keyed: Vec<((u64, usize), Tuple)> = buf
                .into_iter()
                .enumerate()
                .map(|(pos, t)| {
                    let key =
                        t.get(slot).and_then(|v| v.as_node()).map_or(u64::MAX, |n| keys.key(n));
                    ((key, pos), t)
                })
                .collect();
            keyed.sort_unstable_by_key(|(k, _)| *k);
            self.buffer = Some(keyed.into_iter().map(|(_, t)| t).collect());
        }
        let buf = self.buffer.as_mut().expect("filled above");
        if self.pos < buf.len() {
            let bytes = tuple_bytes(&buf[self.pos]);
            let t = std::mem::take(&mut buf[self.pos]);
            self.pos += 1;
            self.ledger.release(rt.gov, bytes);
            Some(t)
        } else {
            None
        }
    }

    fn close(&mut self, rt: &Runtime<'_>) {
        self.buffer = None;
        self.pos = 0;
        self.ledger.release_all(rt.gov);
    }

    fn gauges(&self, out: &mut Vec<Gauge>) {
        out.push(("sort_input", self.sorted_tuples));
        out.push(("sort_runs", self.sort_runs));
        self.ledger.gauges(out);
    }
}

/// Tmp^cs / Tmp^cs_c (paper §5.2.4): materialise one context group at a
/// time, annotate every tuple of the group with the context size, replay.
/// A single implementation covers both variants — `group = None` treats
/// the whole input as one context.
pub struct TmpCsIter {
    input: Box<dyn PhysIter>,
    cs: Slot,
    group: Option<Slot>,
    buf: VecDeque<Tuple>,
    lookahead: Option<Tuple>,
    exhausted: bool,
    ledger: ChargeLedger,
    /// Statistics: total tuples materialised into group buffers.
    pub materialized: u64,
    /// Statistics: number of context groups materialised.
    pub groups: u64,
}

impl TmpCsIter {
    /// New context-size operator.
    pub fn new(input: Box<dyn PhysIter>, cs: Slot, group: Option<Slot>) -> TmpCsIter {
        TmpCsIter {
            input,
            cs,
            group,
            buf: VecDeque::new(),
            lookahead: None,
            exhausted: false,
            ledger: ChargeLedger::new(),
            materialized: 0,
            groups: 0,
        }
    }

    fn fill_group(&mut self, rt: &Runtime<'_>) {
        let first = match self.lookahead.take() {
            Some(t) => Some(t),
            None => self.input.next(rt),
        };
        let Some(first) = first else {
            self.exhausted = true;
            return;
        };
        let group_key =
            self.group.map(|slot| GroupKey::of(first.get(slot).unwrap_or(&Value::Null), rt));
        let mut group = vec![first];
        loop {
            if !rt.gov.tick() {
                self.exhausted = true;
                return;
            }
            match self.input.next(rt) {
                None => {
                    self.exhausted = true;
                    break;
                }
                Some(t) => {
                    let same = match (&group_key, self.group) {
                        (Some(k), Some(slot)) => {
                            &GroupKey::of(t.get(slot).unwrap_or(&Value::Null), rt) == k
                        }
                        _ => true,
                    };
                    if same {
                        group.push(t);
                    } else {
                        self.lookahead = Some(t);
                        break;
                    }
                }
            }
        }
        let cs = Value::Num(group.len() as f64);
        self.materialized += group.len() as u64;
        self.groups += 1;
        for mut t in group {
            t[self.cs] = cs.clone();
            if !self.ledger.charge_tuple(rt.gov, &t) {
                self.exhausted = true;
                return;
            }
            self.buf.push_back(t);
        }
    }
}

impl PhysIter for TmpCsIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.input.open(rt, seed);
        self.buf.clear();
        self.lookahead = None;
        self.exhausted = false;
        self.ledger.release_all(rt.gov);
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        loop {
            if !rt.gov.ok() {
                return None;
            }
            if let Some(t) = self.buf.pop_front() {
                self.ledger.release(rt.gov, tuple_bytes(&t));
                return Some(t);
            }
            if self.exhausted && self.lookahead.is_none() {
                return None;
            }
            self.fill_group(rt);
            if self.buf.is_empty() && self.exhausted && self.lookahead.is_none() {
                return None;
            }
        }
    }

    fn close(&mut self, rt: &Runtime<'_>) {
        self.input.close(rt);
        self.buf.clear();
        self.lookahead = None;
        self.ledger.release_all(rt.gov);
    }

    fn gauges(&self, out: &mut Vec<Gauge>) {
        out.push(("materialized", self.materialized));
        out.push(("groups", self.groups));
        self.ledger.gauges(out);
    }
}

/// 𝔐 — MemoX (§4.2.2): memoise the producer's tuple sequence keyed by
/// the free variable (context node) bound at `open`. A cache hit replays
/// the stored sequence without engaging the producer. Partially consumed
/// evaluations are not cached (early exit must stay correct).
pub struct MemoXIter {
    input: Box<dyn PhysIter>,
    key: Slot,
    table: HashMap<GroupKey, Arc<Vec<Tuple>>>,
    /// Concurrent table shared with the other body replicas of an
    /// Exchange; `None` (the serial default) uses the private `table`.
    shared: Option<Arc<crate::iter::SharedMemo>>,
    /// Report table-size gauges (shared mode: only replica 0 does, so
    /// the merged profile doesn't multiply the table by the replica
    /// count).
    report_entries: bool,
    mode: MemoMode,
    ledger: ChargeLedger,
    /// Statistics: cache hits (observable for tests/ablations).
    pub hits: u64,
    /// Statistics: cache misses.
    pub misses: u64,
    /// Statistics: total tuples held by the memo table.
    pub stored_tuples: u64,
}

enum MemoMode {
    Idle,
    Replay { seq: Arc<Vec<Tuple>>, pos: usize },
    Record { key: GroupKey, acc: Vec<Tuple> },
}

impl MemoXIter {
    /// New MemoX.
    pub fn new(input: Box<dyn PhysIter>, key: Slot) -> MemoXIter {
        MemoXIter {
            input,
            key,
            table: HashMap::new(),
            shared: None,
            report_entries: true,
            mode: MemoMode::Idle,
            ledger: ChargeLedger::new(),
            hits: 0,
            misses: 0,
            stored_tuples: 0,
        }
    }

    /// New MemoX backed by a table shared across Exchange body replicas.
    pub fn new_shared(
        input: Box<dyn PhysIter>,
        key: Slot,
        shared: Arc<crate::iter::SharedMemo>,
        report_entries: bool,
    ) -> MemoXIter {
        MemoXIter {
            shared: Some(shared),
            report_entries,
            ..MemoXIter::new(input, key)
        }
    }

    fn lookup(&self, key: &GroupKey) -> Option<Arc<Vec<Tuple>>> {
        match &self.shared {
            Some(shared) => shared.get(key),
            None => self.table.get(key).cloned(),
        }
    }
}

impl PhysIter for MemoXIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        let key = GroupKey::of(seed.get(self.key).unwrap_or(&Value::Null), rt);
        if let Some(seq) = self.lookup(&key) {
            self.hits += 1;
            self.mode = MemoMode::Replay { seq, pos: 0 };
        } else {
            self.misses += 1;
            self.input.open(rt, seed);
            self.mode = MemoMode::Record { key, acc: Vec::new() };
        }
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        if !rt.gov.tick() {
            return None;
        }
        match &mut self.mode {
            MemoMode::Idle => None,
            MemoMode::Replay { seq, pos } => {
                let t = seq.get(*pos).cloned();
                if t.is_some() {
                    *pos += 1;
                }
                t
            }
            MemoMode::Record { key, acc } => match self.input.next(rt) {
                Some(t) => {
                    if !self.ledger.charge_tuple(rt.gov, &t) {
                        return None;
                    }
                    acc.push(t.clone());
                    Some(t)
                }
                None => {
                    if !rt.gov.ok() {
                        // The producer stopped because the governor
                        // tripped, not because the sequence ended — do
                        // not memoise the truncated recording.
                        return None;
                    }
                    let key = key.clone();
                    let acc = std::mem::take(acc);
                    match &self.shared {
                        Some(shared) => {
                            let n = acc.len() as u64;
                            let (_, won) = shared.insert(key, acc);
                            if won {
                                self.stored_tuples += n;
                                // The table entry survives re-opens:
                                // reclassify its bytes as persistent.
                                self.ledger.commit_all(rt.gov);
                            } else {
                                // Another replica recorded this key
                                // first: discard the duplicate and
                                // return its transient charge.
                                self.ledger.release_all(rt.gov);
                            }
                        }
                        None => {
                            self.stored_tuples += acc.len() as u64;
                            self.table.insert(key, Arc::new(acc));
                            self.ledger.commit_all(rt.gov);
                        }
                    }
                    self.input.close(rt);
                    self.mode = MemoMode::Idle;
                    None
                }
            },
        }
    }

    fn close(&mut self, rt: &Runtime<'_>) {
        // A close before exhaustion discards the partial recording (and
        // returns its transient charge).
        if matches!(self.mode, MemoMode::Record { .. }) {
            self.input.close(rt);
            self.ledger.release_all(rt.gov);
        }
        self.mode = MemoMode::Idle;
    }

    fn gauges(&self, out: &mut Vec<Gauge>) {
        out.push(("memo_hits", self.hits));
        out.push(("memo_misses", self.misses));
        if self.report_entries {
            let (entries, tuples) = match &self.shared {
                Some(shared) => (shared.entries(), shared.stored_tuples()),
                None => (self.table.len() as u64, self.stored_tuples),
            };
            out.push(("memo_entries", entries));
            out.push(("memo_tuples", tuples));
        }
        self.ledger.gauges(out);
    }
}

/// χ^mat — memoizing map for expensive predicate clauses (§4.3.2, after
/// Hellerstein & Naughton): caches the subscript value per key attribute.
pub struct MemoMapIter {
    input: Box<dyn PhysIter>,
    out: Slot,
    key: Slot,
    expr: CompiledPred,
    cache: HashMap<GroupKey, Value>,
    ledger: ChargeLedger,
    /// Statistics: cache hits.
    pub hits: u64,
    /// Statistics: cache misses (subscript evaluations).
    pub misses: u64,
}

impl MemoMapIter {
    /// New memoizing map.
    pub fn new(input: Box<dyn PhysIter>, out: Slot, key: Slot, expr: CompiledPred) -> MemoMapIter {
        MemoMapIter {
            input,
            out,
            key,
            expr,
            cache: HashMap::new(),
            ledger: ChargeLedger::new(),
            hits: 0,
            misses: 0,
        }
    }
}

impl PhysIter for MemoMapIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.input.open(rt, seed);
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        let mut t = self.input.next(rt)?;
        let key = GroupKey::of(t.get(self.key).unwrap_or(&Value::Null), rt);
        let v = match self.cache.get(&key) {
            Some(v) => {
                self.hits += 1;
                v.clone()
            }
            None => {
                self.misses += 1;
                let v = self.expr.eval(rt, &t);
                // The cache entry survives re-opens and closes: charge
                // it as persistent.
                let bytes = group_key_bytes(&key) + value_bytes(&v);
                if !self.ledger.charge(rt.gov, bytes) {
                    return None;
                }
                self.ledger.commit_all(rt.gov);
                self.cache.insert(key, v.clone());
                v
            }
        };
        t[self.out] = v;
        Some(t)
    }

    fn close(&mut self, rt: &Runtime<'_>) {
        self.input.close(rt);
    }

    fn gauges(&self, out: &mut Vec<Gauge>) {
        out.push(("memo_hits", self.hits));
        out.push(("memo_misses", self.misses));
        out.push(("memo_entries", self.cache.len() as u64));
        self.ledger.gauges(out);
    }
}
