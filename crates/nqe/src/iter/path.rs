//! Navigation operators: Υ (unnest-map over an axis + node test, §3.2)
//! and the tokenising unnest used by `id()` (§3.6.3).

use std::collections::VecDeque;

use xmlstore::{
    Axis, AxisCursor, ContentKind, NameId, NodeId, NodeKind, RangeScan, StructuralIndex,
};
use xpath_syntax::{KindTest, NodeTest};

use algebra::attrmgr::Slot;
use algebra::{ProbeKind, ProbeSpec, ScanHint, Tuple, Value};

use crate::exec::Runtime;
use crate::governor::{tuple_bytes, ChargeLedger};
use crate::iter::{CompiledPred, Gauge, PhysIter};

/// Node test resolved against a concrete store (name → `NameId`).
#[derive(Clone, Debug)]
enum ResolvedTest {
    /// A name that does not occur in the document: matches nothing.
    Impossible,
    /// Principal-kind node with this interned name.
    Name(NodeKind, NameId),
    /// Any node of the principal kind (`*`).
    AnyPrincipal(NodeKind),
    /// `prefix:*` — principal kind, textual name starts with `prefix:`.
    Prefix(NodeKind, String),
    /// `node()`
    AnyNode,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction(target?)`
    Pi(Option<NameId>),
}

impl ResolvedTest {
    fn resolve(test: &NodeTest, axis: Axis, rt: &Runtime<'_>) -> ResolvedTest {
        let principal = axis.principal_kind();
        match test {
            NodeTest::Name(n) => match rt.store.intern_lookup(n) {
                Some(id) => ResolvedTest::Name(principal, id),
                None => ResolvedTest::Impossible,
            },
            NodeTest::Wildcard => ResolvedTest::AnyPrincipal(principal),
            NodeTest::NsWildcard(p) => ResolvedTest::Prefix(principal, format!("{p}:")),
            NodeTest::Kind(KindTest::Node) => ResolvedTest::AnyNode,
            NodeTest::Kind(KindTest::Text) => ResolvedTest::Text,
            NodeTest::Kind(KindTest::Comment) => ResolvedTest::Comment,
            NodeTest::Kind(KindTest::Pi(None)) => ResolvedTest::Pi(None),
            NodeTest::Kind(KindTest::Pi(Some(target))) => match rt.store.intern_lookup(target) {
                Some(id) => ResolvedTest::Pi(Some(id)),
                None => ResolvedTest::Impossible,
            },
        }
    }

    fn matches(&self, n: NodeId, rt: &Runtime<'_>) -> bool {
        let store = rt.store;
        match self {
            ResolvedTest::Impossible => false,
            ResolvedTest::Name(kind, id) => store.kind(n) == *kind && store.name(n) == Some(*id),
            ResolvedTest::AnyPrincipal(kind) => store.kind(n) == *kind,
            ResolvedTest::Prefix(kind, prefix) => {
                store.kind(n) == *kind && store.node_name(n).starts_with(prefix)
            }
            ResolvedTest::AnyNode => true,
            ResolvedTest::Text => store.kind(n) == NodeKind::Text,
            ResolvedTest::Comment => store.kind(n) == NodeKind::Comment,
            ResolvedTest::Pi(target) => {
                store.kind(n) == NodeKind::ProcessingInstruction
                    && target.is_none_or(|t| store.name(n) == Some(t))
            }
        }
    }

    /// Same test against the index's dense per-rank arrays — the range
    /// scan's inner loop never touches the store except for the rare
    /// `prefix:*` test, which needs name text.
    fn matches_rank(&self, rank: u32, idx: &StructuralIndex, rt: &Runtime<'_>) -> bool {
        match self {
            ResolvedTest::Impossible => false,
            ResolvedTest::Name(kind, id) => {
                idx.kind_at(rank) == *kind && idx.name_at(rank) == Some(*id)
            }
            ResolvedTest::AnyPrincipal(kind) => idx.kind_at(rank) == *kind,
            ResolvedTest::Prefix(kind, prefix) => {
                idx.kind_at(rank) == *kind
                    && rt.store.node_name(idx.node_at(rank)).starts_with(prefix)
            }
            ResolvedTest::AnyNode => true,
            ResolvedTest::Text => idx.kind_at(rank) == NodeKind::Text,
            ResolvedTest::Comment => idx.kind_at(rank) == NodeKind::Comment,
            ResolvedTest::Pi(target) => {
                idx.kind_at(rank) == NodeKind::ProcessingInstruction
                    && target.is_none_or(|t| idx.name_at(rank) == Some(t))
            }
        }
    }
}

/// Per-context traversal state of Υ: a compiled range scan where the
/// store's interval index covers the axis, the pointer-chasing cursor
/// otherwise.
enum Scan {
    Range(RangeScan),
    Cursor(AxisCursor),
    /// Candidates pre-computed from the content index's postings,
    /// already axis- and test-filtered, in document order.
    Probe(std::vec::IntoIter<(u32, NodeId)>),
}

/// Υ_{c:c₀/axis::test} — for each input tuple, emit one tuple per node
/// reached over the axis (in axis order) that passes the node test. The
/// axis cursor navigates the store directly — there is no intermediate
/// node materialisation (paper §5.2.2).
pub struct UnnestMapIter {
    input: Box<dyn PhysIter>,
    ctx: Slot,
    out: Slot,
    axis: Axis,
    test: NodeTest,
    /// Optimizer kernel hint: `Cursor` skips the per-context index probe
    /// entirely; `Auto`/`Range` probe the index and fall back.
    hint: ScanHint,
    /// Content-index pre-filter (`step[@a='v']` / `step[e='v']`): when
    /// the store's persistent content index covers the key, candidates
    /// come from its postings instead of an axis scan. A lossless
    /// narrowing — the predicate above still verifies every candidate.
    probe: Option<ProbeSpec>,
    /// The probe's postings, fetched once per execution: outer `None` =
    /// not yet fetched, inner `None` = the store cannot answer for this
    /// key (no content index, uncovered name, over-length value) and
    /// every context falls back to the plain scan.
    postings: Option<Option<Vec<(u32, NodeId)>>>,
    resolved: Option<ResolvedTest>,
    current: Option<(Tuple, Scan)>,
    /// Statistics: context nodes served by an interval range scan.
    pub range_scans: u64,
    /// Statistics: context nodes on an interval axis that fell back to
    /// the cursor (store without an index, or unranked node).
    pub cursor_fallbacks: u64,
    /// Statistics: context nodes served by a content-index probe.
    pub index_probes: u64,
    /// Statistics: postings examined across all probe windows.
    pub probe_postings: u64,
}

impl UnnestMapIter {
    /// New unnest-map.
    pub fn new(
        input: Box<dyn PhysIter>,
        ctx: Slot,
        out: Slot,
        axis: Axis,
        test: NodeTest,
        hint: ScanHint,
        probe: Option<ProbeSpec>,
    ) -> UnnestMapIter {
        UnnestMapIter {
            input,
            ctx,
            out,
            axis,
            test,
            hint,
            probe,
            postings: None,
            resolved: None,
            current: None,
            range_scans: 0,
            cursor_fallbacks: 0,
            index_probes: 0,
            probe_postings: 0,
        }
    }

    /// True for the axes the interval index can serve as a range scan.
    fn interval_axis(axis: Axis) -> bool {
        matches!(
            axis,
            Axis::Descendant | Axis::DescendantOrSelf | Axis::Following | Axis::Preceding
        )
    }
}

impl PhysIter for UnnestMapIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.input.open(rt, seed);
        self.current = None;
        if self.resolved.is_none() {
            self.resolved = Some(ResolvedTest::resolve(&self.test, self.axis, rt));
        }
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        let resolved = self.resolved.as_ref().expect("opened");
        if matches!(resolved, ResolvedTest::Impossible) {
            return None;
        }
        loop {
            if let Some((tuple, scan)) = &mut self.current {
                // The axis scan is the engine's innermost unbounded loop:
                // tick per advance so deadlines and cancellation are
                // observed even when nothing matches the node test.
                match scan {
                    Scan::Range(range) => {
                        // One virtual call per output tuple, not per hop:
                        // the scan loop itself is pure rank arithmetic.
                        let idx = rt.store.structural_index().expect("scan implies index");
                        while rt.gov.tick() {
                            let Some(rank) = range.advance(idx) else {
                                break;
                            };
                            if resolved.matches_rank(rank, idx, rt) {
                                let mut out = tuple.clone();
                                out[self.out] = Value::Node(idx.node_at(rank));
                                return Some(out);
                            }
                        }
                    }
                    Scan::Cursor(cursor) => {
                        while rt.gov.tick() {
                            let Some(n) = cursor.advance(rt.store) else {
                                break;
                            };
                            if resolved.matches(n, rt) {
                                let mut out = tuple.clone();
                                out[self.out] = Value::Node(n);
                                return Some(out);
                            }
                        }
                    }
                    Scan::Probe(cands) => {
                        // Candidates are already axis- and test-filtered,
                        // so every advance emits: tick per output tuple.
                        if rt.gov.tick() {
                            if let Some((_, n)) = cands.next() {
                                let mut out = tuple.clone();
                                out[self.out] = Value::Node(n);
                                return Some(out);
                            }
                        }
                    }
                }
                if !rt.gov.ok() {
                    return None;
                }
                self.current = None;
            }
            let t = self.input.next(rt)?;
            let Some(node) = t.get(self.ctx).and_then(|v| v.as_node()) else {
                continue; // unbound context yields nothing
            };
            // A probe annotation takes precedence over either scan
            // kernel: the candidates come straight from the content
            // index's postings clipped to the context's subtree window.
            if let Some(spec) = &self.probe {
                if self.postings.is_none() {
                    let kind = match spec.kind {
                        ProbeKind::Attribute => ContentKind::Attribute,
                        ProbeKind::Element => ContentKind::Element,
                    };
                    self.postings = Some(rt.store.content_probe(kind, &spec.name, &spec.value));
                }
                if let Some(Some(post)) = &self.postings {
                    if let Some(cands) = probe_window(
                        rt,
                        post,
                        spec.kind,
                        self.axis,
                        node,
                        resolved,
                        &mut self.probe_postings,
                    ) {
                        self.index_probes += 1;
                        self.current = Some((t, Scan::Probe(cands.into_iter())));
                        continue;
                    }
                }
            }
            // A `Cursor` hint skips the index probe: the optimizer
            // estimated the scan span to dwarf the axis output, so the
            // cursor is the chosen kernel, not a fallback.
            let probed = if self.hint == ScanHint::Cursor {
                None
            } else {
                rt.store.structural_index().and_then(|idx| idx.range_scan(self.axis, node))
            };
            let scan = match probed {
                Some(range) => {
                    self.range_scans += 1;
                    Scan::Range(range)
                }
                None => {
                    if Self::interval_axis(self.axis) && self.hint != ScanHint::Cursor {
                        self.cursor_fallbacks += 1;
                    }
                    Scan::Cursor(AxisCursor::new(rt.store, self.axis, node))
                }
            };
            self.current = Some((t, scan));
        }
    }

    fn close(&mut self, rt: &Runtime<'_>) {
        self.input.close(rt);
        self.current = None;
    }

    fn gauges(&self, out: &mut Vec<Gauge>) {
        out.push(("range_scans", self.range_scans));
        out.push(("cursor_fallbacks", self.cursor_fallbacks));
        out.push(("index_probes", self.index_probes));
        out.push(("probe_postings", self.probe_postings));
    }
}

/// Compute one context's probe candidates: clip the rank-sorted
/// postings to the context's subtree window, map element postings to
/// their parent (the step's candidate), then keep only candidates that
/// actually lie on the axis and pass the node test. `None` when the
/// store has no structural index or the context is unranked — the
/// caller falls back to the plain scan kernels.
fn probe_window(
    rt: &Runtime<'_>,
    postings: &[(u32, NodeId)],
    kind: ProbeKind,
    axis: Axis,
    ctx: NodeId,
    resolved: &ResolvedTest,
    examined: &mut u64,
) -> Option<Vec<(u32, NodeId)>> {
    let idx = rt.store.structural_index()?;
    let (lo, hi) = idx.subtree_range(ctx)?;
    let start = postings.partition_point(|&(r, _)| r < lo);
    let end = postings.partition_point(|&(r, _)| r <= hi);
    let window = &postings[start..end];
    *examined += window.len() as u64;
    // Attribute postings carry the owning element; element postings
    // carry the value-matching element, whose parent is the candidate.
    let mut cands: Vec<(u32, NodeId)> = match kind {
        ProbeKind::Attribute => window.to_vec(),
        ProbeKind::Element => {
            let mut parents = Vec::with_capacity(window.len());
            for &(_, n) in window {
                if let Some(p) = rt.store.parent(n) {
                    if let Some(pr) = idx.rank_of(p) {
                        parents.push((pr, p));
                    }
                }
            }
            parents.sort_unstable_by_key(|&(r, _)| r);
            parents.dedup_by_key(|&mut (r, _)| r);
            parents
        }
    };
    cands.retain(|&(r, n)| {
        let on_axis = match axis {
            Axis::Child => rt.store.parent(n) == Some(ctx),
            Axis::Descendant => r > lo,
            Axis::DescendantOrSelf => true,
            // The optimizer only annotates the three axes above.
            _ => false,
        };
        on_axis && resolved.matches_rank(r, idx, rt)
    });
    Some(cands)
}

/// Υ_{t:tokenize(e)} — one tuple per whitespace-separated token of the
/// string subscript (`id()` support, §3.6.3).
pub struct TokenizeIter {
    input: Box<dyn PhysIter>,
    out: Slot,
    expr: CompiledPred,
    pending: VecDeque<Tuple>,
    ledger: ChargeLedger,
}

impl TokenizeIter {
    /// New tokenizer.
    pub fn new(input: Box<dyn PhysIter>, out: Slot, expr: CompiledPred) -> TokenizeIter {
        TokenizeIter {
            input,
            out,
            expr,
            pending: VecDeque::new(),
            ledger: ChargeLedger::new(),
        }
    }
}

impl PhysIter for TokenizeIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.input.open(rt, seed);
        self.pending.clear();
        self.ledger.release_all(rt.gov);
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        loop {
            if !rt.gov.tick() {
                return None;
            }
            if let Some(t) = self.pending.pop_front() {
                self.ledger.release(rt.gov, tuple_bytes(&t));
                return Some(t);
            }
            let t = self.input.next(rt)?;
            let s = self.expr.eval(rt, &t).to_str(rt.store);
            for token in s.split_ascii_whitespace() {
                let mut out = t.clone();
                out[self.out] = Value::Str(token.into());
                if !self.ledger.charge_tuple(rt.gov, &out) {
                    return None;
                }
                self.pending.push_back(out);
            }
        }
    }

    fn close(&mut self, rt: &Runtime<'_>) {
        self.input.close(rt);
        self.pending.clear();
        self.ledger.release_all(rt.gov);
    }

    fn gauges(&self, out: &mut Vec<Gauge>) {
        self.ledger.gauges(out);
    }
}
