//! Physical algebra: Graefe-style open/next/close iterators, one per
//! logical operator (paper §5.2.1). Tuples are register frames of the
//! plan-wide width fixed by the attribute manager; the dependent side of
//! a d-join (and every nested plan) is *seeded* with the outer tuple,
//! which implements free-variable binding (§2.2.2).

mod basic;
mod exchange;
mod group;
mod join;
mod path;

pub use basic::{ConcatIter, CounterIter, MapIter, RenameCopyIter, SelectIter, SingletonIter};
pub use exchange::{ExchangeIter, ParallelStats, PartitionFeed, PartitionSourceIter, SharedMemo};
pub use group::{DedupIter, MemoMapIter, MemoXIter, SortIter, TmpCsIter};
pub use join::{DJoinIter, SemiJoinIter};
pub use path::{TokenizeIter, UnnestMapIter};

use algebra::attrmgr::Slot;
use algebra::scalar::AggFunc;
use algebra::{Tuple, Value};

use crate::exec::Runtime;
use crate::nvm::{self, Program};

/// One operator-specific metric: a static name and a counter value
/// (e.g. `("memo_hits", 42)`).
pub type Gauge = (&'static str, u64);

/// The iterator interface of the physical algebra.
///
/// `Send` is a supertrait: the Exchange operator moves whole plan
/// replicas into scoped worker threads, so every iterator (and
/// everything it owns) must be transferable.
pub trait PhysIter: Send {
    /// (Re-)start the iterator with an outer binding tuple. Caches
    /// (MemoX, χ^mat, independent aggregates) survive re-opens.
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple);

    /// Produce the next tuple. Returning `None` with the runtime's
    /// governor tripped means "stopped by the budget", not exhaustion —
    /// the executor turns the trip into a typed error after closing.
    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple>;

    /// Release per-evaluation state and return any transient governor
    /// charges (default: nothing to do — Rust drops buffers with the
    /// operator).
    fn close(&mut self, _rt: &Runtime<'_>) {}

    /// Report operator-specific gauges (cache hit/miss counts,
    /// materialised tuple counts, re-open counts, …). Collected by the
    /// profiler at close; the default reports nothing.
    fn gauges(&self, _out: &mut Vec<Gauge>) {}
}

/// A compiled scalar subscript: an NVM program plus the nested iterator
/// plans its `EvalNested` instructions refer to.
pub struct CompiledPred {
    /// The NVM program.
    pub prog: Program,
    /// Nested sequence plans (aggregations).
    pub nested: Vec<NestedEval>,
}

impl CompiledPred {
    /// Evaluate against one tuple.
    pub fn eval(&mut self, rt: &Runtime<'_>, tuple: &Tuple) -> Value {
        nvm::run(&self.prog, rt, tuple, &mut self.nested)
    }
}

/// A nested sequence-valued plan consumed as an aggregate value
/// (paper §5.2.3), with premature termination for `exists()` (§5.2.5)
/// and one-shot caching for plans without free attributes.
pub struct NestedEval {
    iter: Box<dyn PhysIter>,
    over: Slot,
    func: AggFunc,
    independent: bool,
    cached: Option<Value>,
}

impl NestedEval {
    /// Wrap a built nested plan.
    pub fn new(iter: Box<dyn PhysIter>, over: Slot, func: AggFunc, independent: bool) -> Self {
        NestedEval { iter, over, func, independent, cached: None }
    }

    /// Run the nested plan seeded with `tuple` and aggregate.
    pub fn evaluate(&mut self, rt: &Runtime<'_>, tuple: &Tuple) -> Value {
        if self.independent {
            if let Some(v) = &self.cached {
                return v.clone();
            }
        }
        self.iter.open(rt, tuple);
        let store = rt.store;
        let result = match self.func {
            AggFunc::Exists => {
                // Smart aggregation: stop after the first tuple.
                let found = self.iter.next(rt).is_some();
                Value::Bool(found)
            }
            AggFunc::Count => {
                let mut n = 0u64;
                while self.iter.next(rt).is_some() {
                    n += 1;
                }
                Value::Num(n as f64)
            }
            AggFunc::Sum => {
                let mut total = 0.0f64;
                while let Some(t) = self.iter.next(rt) {
                    total += t.get(self.over).map_or(f64::NAN, |v| v.to_num(store));
                }
                Value::Num(total)
            }
            AggFunc::Max | AggFunc::Min => {
                let mut best: Option<f64> = None;
                while let Some(t) = self.iter.next(rt) {
                    let x = t.get(self.over).map_or(f64::NAN, |v| v.to_num(store));
                    best = Some(match best {
                        None => x,
                        Some(b) => {
                            if self.func == AggFunc::Max {
                                b.max(x)
                            } else {
                                b.min(x)
                            }
                        }
                    });
                }
                Value::Num(best.unwrap_or(f64::NAN))
            }
            AggFunc::FirstNode => {
                let keys = algebra::DocOrderKeys::new(store);
                let mut best: Option<(u64, xmlstore::NodeId)> = None;
                while let Some(t) = self.iter.next(rt) {
                    if let Some(Value::Node(n)) = t.get(self.over) {
                        let o = keys.key(*n);
                        if best.is_none_or(|(bo, _)| o < bo) {
                            best = Some((o, *n));
                        }
                    }
                }
                match best {
                    Some((_, n)) => Value::Node(n),
                    None => Value::Null,
                }
            }
        };
        self.iter.close(rt);
        if trace_enabled() {
            eprintln!(
                "nested {:?} over slot {} -> {:?} (indep={})",
                self.func, self.over, result, self.independent
            );
        }
        if self.independent {
            self.cached = Some(result.clone());
        }
        result
    }
}

/// Debug tracing of nested-aggregate evaluations (`NQE_TRACE=1`).
fn trace_enabled() -> bool {
    use std::sync::OnceLock;
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var("NQE_TRACE").is_ok())
}

/// Key for duplicate elimination / grouping on an attribute. Result
/// attributes are node-valued in every translation, but the key falls
/// back to the printed value for robustness.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum GroupKey {
    /// Node identity.
    Node(u32),
    /// Unbound attribute.
    Null,
    /// Non-node values, keyed by canonical string form.
    Other(String),
}

impl GroupKey {
    /// Build the key for `v`.
    pub fn of(v: &Value, rt: &Runtime<'_>) -> GroupKey {
        match v {
            Value::Node(n) => GroupKey::Node(n.0),
            Value::Null => GroupKey::Null,
            other => GroupKey::Other(other.to_str(rt.store)),
        }
    }
}
