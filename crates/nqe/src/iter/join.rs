//! Join operators: the dependency join (d-join, §3.1.1) and the
//! semi-/anti-joins of the node-set comparison translation (§3.6.2).

use algebra::attrmgr::Slot;
use algebra::Tuple;

use crate::exec::Runtime;
use crate::governor::ChargeLedger;
use crate::iter::{CompiledPred, Gauge, PhysIter};

/// `<>` — d-join: for every left tuple, re-open the dependent side seeded
/// with that tuple and stream its results. This is the free-variable
/// binding mechanism of the canonical translation.
pub struct DJoinIter {
    left: Box<dyn PhysIter>,
    right: Box<dyn PhysIter>,
    right_active: bool,
    /// Statistics: dependent-side re-opens (one per left tuple).
    pub reopens: u64,
}

impl DJoinIter {
    /// New d-join.
    pub fn new(left: Box<dyn PhysIter>, right: Box<dyn PhysIter>) -> DJoinIter {
        DJoinIter { left, right, right_active: false, reopens: 0 }
    }
}

impl PhysIter for DJoinIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.left.open(rt, seed);
        self.right_active = false;
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        loop {
            if !rt.gov.tick() {
                return None;
            }
            if self.right_active {
                if let Some(t) = self.right.next(rt) {
                    return Some(t);
                }
                self.right.close(rt);
                self.right_active = false;
            }
            let lt = self.left.next(rt)?;
            self.right.open(rt, &lt);
            self.reopens += 1;
            self.right_active = true;
        }
    }

    fn close(&mut self, rt: &Runtime<'_>) {
        self.left.close(rt);
        if self.right_active {
            self.right.close(rt);
            self.right_active = false;
        }
    }

    fn gauges(&self, out: &mut Vec<Gauge>) {
        out.push(("reopens", self.reopens));
    }
}

/// ⋉_p / ▷_p — semi-join and anti-join. The match side is evaluated once
/// per open (it has no dependency on left tuples, only on the enclosing
/// seed) and materialised; each probe tuple is emitted when a match
/// exists (`anti = false`) or when none does (`anti = true`). The probe
/// loop terminates on the first match — the existential early exit of
/// §5.2.5 at the join level.
pub struct SemiJoinIter {
    left: Box<dyn PhysIter>,
    right: Box<dyn PhysIter>,
    pred: CompiledPred,
    /// Slots the match side defines: its values are merged into the probe
    /// tuple before predicate evaluation (tuple concatenation `∘`).
    right_defined: Vec<Slot>,
    anti: bool,
    seed: Tuple,
    right_mat: Option<Vec<Tuple>>,
    ledger: ChargeLedger,
    /// Statistics: total match-side tuples materialised (all opens).
    pub right_materialized: u64,
}

impl SemiJoinIter {
    /// New semi-join (`anti = false`) or anti-join (`anti = true`).
    pub fn new(
        left: Box<dyn PhysIter>,
        right: Box<dyn PhysIter>,
        pred: CompiledPred,
        right_defined: Vec<Slot>,
        anti: bool,
    ) -> SemiJoinIter {
        SemiJoinIter {
            left,
            right,
            pred,
            right_defined,
            anti,
            seed: Tuple::new(),
            right_mat: None,
            ledger: ChargeLedger::new(),
            right_materialized: 0,
        }
    }
}

impl PhysIter for SemiJoinIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.left.open(rt, seed);
        self.seed = seed.clone();
        self.right_mat = None;
        self.ledger.release_all(rt.gov);
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        if !rt.gov.ok() {
            return None;
        }
        if self.right_mat.is_none() {
            self.right.open(rt, &self.seed);
            let mut mat = Vec::new();
            while let Some(t) = self.right.next(rt) {
                if !self.ledger.charge_tuple(rt.gov, &t) {
                    break;
                }
                mat.push(t);
            }
            self.right.close(rt);
            if !rt.gov.ok() {
                return None;
            }
            self.right_materialized += mat.len() as u64;
            self.right_mat = Some(mat);
        }
        'probe: loop {
            if !rt.gov.tick() {
                return None;
            }
            let lt = self.left.next(rt)?;
            let mat = self.right_mat.as_ref().expect("materialised above");
            for rtup in mat {
                let mut merged = lt.clone();
                for &s in &self.right_defined {
                    merged[s] = rtup[s].clone();
                }
                if self.pred.eval(rt, &merged).to_bool() {
                    if self.anti {
                        continue 'probe;
                    }
                    return Some(lt);
                }
            }
            if self.anti {
                return Some(lt);
            }
        }
    }

    fn close(&mut self, rt: &Runtime<'_>) {
        self.left.close(rt);
        self.right_mat = None;
        self.ledger.release_all(rt.gov);
    }

    fn gauges(&self, out: &mut Vec<Gauge>) {
        out.push(("right_materialized", self.right_materialized));
        self.ledger.gauges(out);
    }
}
