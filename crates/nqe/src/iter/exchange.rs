//! ⇶ — Volcano-style Exchange (DESIGN.md §14): intra-query parallelism
//! by partitioning the outer context tuples of a parallel-safe spine
//! segment across a scoped worker pool.
//!
//! `open` drains the source serially into one buffer, splits it into
//! contiguous chunks, and lets worker threads *claim* chunks from a
//! shared counter (dynamic claiming doubles as work stealing: a worker
//! stuck on a heavy chunk simply claims fewer). Each worker owns a full
//! replica of the body plan whose single ▤ (PartitionSource) leaf
//! replays the claimed chunk. Because every body operator is partition
//! transparent (its output for a contiguous input run depends only on
//! that run), concatenating the per-chunk outputs in chunk order is
//! byte-identical to the serial plan.
//!
//! Resource accounting: the coordinator charges the source buffer,
//! workers charge their result buffers through private ledgers, and the
//! coordinator absorbs those ledgers after the join — on a governor
//! trip everything is released before the typed error surfaces, so the
//! zero-leaked-transients invariant of DESIGN.md §11 holds under
//! parallel unwind exactly as it does serially.

use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use algebra::Tuple;

use crate::exec::Runtime;
use crate::governor::{tuple_bytes, ChargeLedger};
use crate::iter::{Gauge, GroupKey, PhysIter};
use crate::profile::{OpStats, SharedStats};

/// How many chunks to cut per worker: more chunks → finer stealing
/// granularity at the cost of more `open` calls on the body.
const CHUNKS_PER_WORKER: usize = 4;

/// Per-Exchange execution statistics surfaced in EXPLAIN ANALYZE's
/// `parallel:` section.
#[derive(Clone, Debug, Default)]
pub struct ParallelStats {
    /// Worker threads (= body replicas).
    pub workers: usize,
    /// Chunks cut in the most recent run.
    pub partitions: usize,
    /// Source tuples drained (cumulative over runs).
    pub source_tuples: u64,
    /// Output tuples per worker (cumulative).
    pub worker_tuples: Vec<u64>,
    /// Chunks claimed per worker (cumulative) — the steal/imbalance
    /// gauge: equal shares mean no stealing happened.
    pub worker_chunks: Vec<u64>,
    /// Nanoseconds spent merging worker results back in chunk order.
    pub merge_nanos: u64,
    /// Parallel runs executed (an Exchange inside a scalar plan can be
    /// re-opened).
    pub runs: u64,
}

impl ParallelStats {
    /// Zeroed statistics for `workers` threads.
    pub fn new(workers: usize) -> ParallelStats {
        ParallelStats {
            workers,
            worker_tuples: vec![0; workers],
            worker_chunks: vec![0; workers],
            ..ParallelStats::default()
        }
    }
}

/// One claimed chunk: a shared view of the source buffer plus the index
/// range the worker owns.
type Chunk = (Arc<Vec<Tuple>>, Range<usize>);

/// The chunk hand-off slot between the Exchange coordinator and one
/// worker's ▤ leaf: the worker loop stores the claimed chunk here right
/// before re-opening its body replica.
#[derive(Default)]
pub struct PartitionFeed {
    slot: Mutex<Option<Chunk>>,
}

impl PartitionFeed {
    /// Empty feed.
    pub fn new() -> PartitionFeed {
        PartitionFeed::default()
    }

    /// Assign a chunk of the shared source buffer.
    pub fn set(&self, data: Arc<Vec<Tuple>>, range: Range<usize>) {
        *self.slot.lock() = Some((data, range));
    }

    /// Drop the buffer reference so the coordinator's release of the
    /// source bytes matches the actual deallocation.
    pub fn clear(&self) {
        *self.slot.lock() = None;
    }

    fn snapshot(&self) -> Option<(Arc<Vec<Tuple>>, Range<usize>)> {
        self.slot.lock().clone()
    }
}

/// ▤ — the body-side leaf: replays the chunk currently assigned to this
/// worker's feed. Seeding is a no-op: source tuples are full frames that
/// already carry the query seed's bindings.
pub struct PartitionSourceIter {
    feed: Arc<PartitionFeed>,
    data: Option<Arc<Vec<Tuple>>>,
    pos: usize,
    end: usize,
}

impl PartitionSourceIter {
    /// New leaf reading from `feed`.
    pub fn new(feed: Arc<PartitionFeed>) -> PartitionSourceIter {
        PartitionSourceIter { feed, data: None, pos: 0, end: 0 }
    }
}

impl PhysIter for PartitionSourceIter {
    fn open(&mut self, _rt: &Runtime<'_>, _seed: &Tuple) {
        match self.feed.snapshot() {
            Some((data, range)) => {
                self.pos = range.start;
                self.end = range.end.min(data.len());
                self.data = Some(data);
            }
            None => {
                self.data = None;
                self.pos = 0;
                self.end = 0;
            }
        }
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        if !rt.gov.tick() {
            return None;
        }
        let data = self.data.as_ref()?;
        if self.pos < self.end {
            let t = data[self.pos].clone();
            self.pos += 1;
            Some(t)
        } else {
            None
        }
    }

    fn close(&mut self, _rt: &Runtime<'_>) {
        self.data = None;
    }
}

/// Lock-striped concurrent MemoX table (𝔐, paper §4.2.2) shared by all
/// body replicas of one Exchange: a key computed by one worker replays
/// on every other. Recording happens outside any lock; on a losing race
/// the second recorder's rows are discarded (the winner's entry is
/// replayed) and its transient charge is released by the caller.
pub struct SharedMemo {
    shards: Vec<Mutex<HashMap<GroupKey, Arc<Vec<Tuple>>>>>,
}

impl Default for SharedMemo {
    fn default() -> SharedMemo {
        SharedMemo::new()
    }
}

impl SharedMemo {
    /// New table with a fixed stripe count (16 — enough that workers on
    /// distinct keys rarely contend).
    pub fn new() -> SharedMemo {
        SharedMemo {
            shards: (0..16).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &GroupKey) -> &Mutex<HashMap<GroupKey, Arc<Vec<Tuple>>>> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[h.finish() as usize % self.shards.len()]
    }

    /// Look up a memoised sequence.
    pub fn get(&self, key: &GroupKey) -> Option<Arc<Vec<Tuple>>> {
        self.shard(key).lock().get(key).cloned()
    }

    /// Insert a fully recorded sequence. Returns the table's entry and
    /// whether `rows` won the race (false → the caller recorded a
    /// duplicate and should release its transient charge).
    pub fn insert(&self, key: GroupKey, rows: Vec<Tuple>) -> (Arc<Vec<Tuple>>, bool) {
        use std::collections::hash_map::Entry;
        let mut shard = self.shard(&key).lock();
        match shard.entry(key) {
            Entry::Occupied(e) => (e.get().clone(), false),
            Entry::Vacant(v) => {
                let seq = Arc::new(rows);
                v.insert(seq.clone());
                (seq, true)
            }
        }
    }

    /// Total memoised keys.
    pub fn entries(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().len() as u64).sum()
    }

    /// Total memoised tuples.
    pub fn stored_tuples(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().values().map(|v| v.len() as u64).sum::<u64>())
            .sum()
    }
}

/// One worker's private return: claimed chunk results plus the ledger
/// holding their transient charges.
struct WorkerOut {
    chunks: Vec<(usize, Vec<Tuple>)>,
    ledger: ChargeLedger,
    produced: u64,
    claimed: u64,
}

/// ⇶ — the Exchange coordinator.
pub struct ExchangeIter {
    source: Box<dyn PhysIter>,
    /// One (body replica, feed) pair per worker.
    replicas: Vec<(Box<dyn PhysIter>, Arc<PartitionFeed>)>,
    /// Display rows registered in the query profile for the body's
    /// operators, refreshed to Σ(shards) after every run.
    display: Vec<SharedStats>,
    /// Per-replica shard counters, aligned 1:1 with `display`.
    shards: Vec<Vec<SharedStats>>,
    stats: Option<Arc<Mutex<ParallelStats>>>,
    out: VecDeque<Tuple>,
    ledger: ChargeLedger,
    source_tuples: u64,
    last_chunks: u64,
    max_worker_tuples: u64,
    min_worker_tuples: u64,
}

impl ExchangeIter {
    /// New Exchange over `source` with one body replica per worker.
    pub fn new(
        source: Box<dyn PhysIter>,
        replicas: Vec<(Box<dyn PhysIter>, Arc<PartitionFeed>)>,
        display: Vec<SharedStats>,
        shards: Vec<Vec<SharedStats>>,
        stats: Option<Arc<Mutex<ParallelStats>>>,
    ) -> ExchangeIter {
        assert!(!replicas.is_empty(), "Exchange needs at least one worker");
        ExchangeIter {
            source,
            replicas,
            display,
            shards,
            stats,
            out: VecDeque::new(),
            ledger: ChargeLedger::new(),
            source_tuples: 0,
            last_chunks: 0,
            max_worker_tuples: 0,
            min_worker_tuples: 0,
        }
    }

    /// Fold the per-replica shard counters into the display rows. The
    /// shards are cumulative, so the display is overwritten, not added.
    fn refresh_display(&self) {
        for (i, d) in self.display.iter().enumerate() {
            let mut sum = OpStats::default();
            for shard in &self.shards {
                sum.accumulate(&shard[i].lock());
            }
            *d.lock() = sum;
        }
    }
}

impl PhysIter for ExchangeIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.out.clear();
        self.ledger.release_all(rt.gov);

        // Phase 1 — drain the source serially, charging the buffer.
        self.source.open(rt, seed);
        let mut buf: Vec<Tuple> = Vec::new();
        let mut source_bytes = 0u64;
        while rt.gov.ok() && !rt.store.storage_tripped() {
            let Some(t) = self.source.next(rt) else { break };
            let bytes = tuple_bytes(&t);
            if !self.ledger.charge_tuple(rt.gov, &t) {
                break;
            }
            source_bytes += bytes;
            buf.push(t);
        }
        self.source.close(rt);
        if !rt.gov.ok() || rt.store.storage_tripped() {
            self.ledger.release_all(rt.gov);
            return;
        }
        self.source_tuples = buf.len() as u64;
        if buf.is_empty() {
            self.ledger.release_all(rt.gov);
            self.last_chunks = 0;
            return;
        }

        // Phase 2 — cut contiguous chunks and run the worker pool.
        let workers = self.replicas.len();
        let target = (workers * CHUNKS_PER_WORKER).min(buf.len()).max(1);
        let chunk_len = buf.len().div_ceil(target);
        let chunk_list: Vec<Range<usize>> = (0..buf.len())
            .step_by(chunk_len)
            .map(|s| s..(s + chunk_len).min(buf.len()))
            .collect();
        self.last_chunks = chunk_list.len() as u64;
        let data = Arc::new(buf);
        let next_chunk = AtomicUsize::new(0);

        let mut outs: Vec<WorkerOut> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let chunk_list = &chunk_list;
            let next_chunk = &next_chunk;
            let data = &data;
            let handles: Vec<_> = self
                .replicas
                .iter_mut()
                .map(|(body, feed)| {
                    s.spawn(move || {
                        let mut out = WorkerOut {
                            chunks: Vec::new(),
                            ledger: ChargeLedger::new(),
                            produced: 0,
                            claimed: 0,
                        };
                        loop {
                            if !rt.gov.ok() || rt.store.storage_tripped() {
                                break;
                            }
                            let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                            if c >= chunk_list.len() {
                                break;
                            }
                            out.claimed += 1;
                            feed.set(data.clone(), chunk_list[c].clone());
                            body.open(rt, seed);
                            let mut rows = Vec::new();
                            while let Some(t) = body.next(rt) {
                                if !out.ledger.charge_tuple(rt.gov, &t) {
                                    break;
                                }
                                out.produced += 1;
                                rows.push(t);
                            }
                            body.close(rt);
                            out.chunks.push((c, rows));
                        }
                        feed.clear();
                        if !rt.gov.ok() || rt.store.storage_tripped() {
                            // First error wins; every loser returns its
                            // transient charges before unwinding.
                            out.ledger.release_all(rt.gov);
                            out.chunks.clear();
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                outs.push(h.join().expect("exchange worker panicked"));
            }
        });

        // Phase 3 — merge in chunk order (source order).
        let t0 = Instant::now();
        let tripped = !rt.gov.ok() || rt.store.storage_tripped();
        let mut produced: Vec<u64> = Vec::with_capacity(workers);
        let mut claimed: Vec<u64> = Vec::with_capacity(workers);
        let mut merged: Vec<(usize, Vec<Tuple>)> = Vec::with_capacity(chunk_list.len());
        for mut w in outs {
            self.ledger.absorb(w.ledger);
            produced.push(w.produced);
            claimed.push(w.claimed);
            merged.append(&mut w.chunks);
        }
        if tripped {
            self.out.clear();
            self.ledger.release_all(rt.gov);
        } else {
            merged.sort_unstable_by_key(|(c, _)| *c);
            for (_, rows) in merged {
                self.out.extend(rows);
            }
            // The source buffer is dropped here (feeds cleared above):
            // return its bytes, keeping only the charged output.
            self.ledger.release(rt.gov, source_bytes);
        }
        let merge_nanos = t0.elapsed().as_nanos() as u64;
        self.max_worker_tuples = produced.iter().copied().max().unwrap_or(0);
        self.min_worker_tuples = produced.iter().copied().min().unwrap_or(0);

        self.refresh_display();
        if let Some(stats) = &self.stats {
            let mut st = stats.lock();
            st.runs += 1;
            st.partitions = chunk_list.len();
            st.source_tuples += self.source_tuples;
            st.merge_nanos += merge_nanos;
            for (w, n) in produced.iter().enumerate() {
                st.worker_tuples[w] += *n;
            }
            for (w, n) in claimed.iter().enumerate() {
                st.worker_chunks[w] += *n;
            }
        }
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        let t = self.out.pop_front()?;
        self.ledger.release(rt.gov, tuple_bytes(&t));
        Some(t)
    }

    fn close(&mut self, rt: &Runtime<'_>) {
        self.out.clear();
        self.ledger.release_all(rt.gov);
    }

    fn gauges(&self, out: &mut Vec<Gauge>) {
        out.push(("workers", self.replicas.len() as u64));
        out.push(("chunks", self.last_chunks));
        out.push(("source_tuples", self.source_tuples));
        out.push(("worker_max_tuples", self.max_worker_tuples));
        out.push(("worker_min_tuples", self.min_worker_tuples));
        self.ledger.gauges(out);
    }
}
