//! Tuple-at-a-time pipeline operators: □, σ, χ, renaming copies, the
//! positional counter map (with group reset, §4.3.1) and ⊕.

use algebra::attrmgr::Slot;
use algebra::{Tuple, Value};

use crate::exec::Runtime;
use crate::iter::{CompiledPred, GroupKey, PhysIter};

/// □ — one tuple: the seed (the outer binding), which makes the dependent
/// branch of a d-join see the left tuple's attributes.
pub struct SingletonIter {
    seed: Tuple,
    done: bool,
}

impl SingletonIter {
    /// New singleton scan of the given frame width (used before the first
    /// `open` seeds it).
    pub fn new() -> SingletonIter {
        SingletonIter { seed: Tuple::new(), done: true }
    }
}

impl Default for SingletonIter {
    fn default() -> Self {
        Self::new()
    }
}

impl PhysIter for SingletonIter {
    fn open(&mut self, _rt: &Runtime<'_>, seed: &Tuple) {
        self.seed = seed.clone();
        self.done = false;
    }

    fn next(&mut self, _rt: &Runtime<'_>) -> Option<Tuple> {
        if self.done {
            None
        } else {
            self.done = true;
            Some(std::mem::take(&mut self.seed))
        }
    }
}

/// σ — selection.
pub struct SelectIter {
    input: Box<dyn PhysIter>,
    pred: CompiledPred,
}

impl SelectIter {
    /// New selection.
    pub fn new(input: Box<dyn PhysIter>, pred: CompiledPred) -> SelectIter {
        SelectIter { input, pred }
    }
}

impl PhysIter for SelectIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.input.open(rt, seed);
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        loop {
            if !rt.gov.tick() {
                return None;
            }
            let t = self.input.next(rt)?;
            if self.pred.eval(rt, &t).to_bool() {
                return Some(t);
            }
        }
    }

    fn close(&mut self, rt: &Runtime<'_>) {
        self.input.close(rt);
    }
}

/// χ — map: extend the tuple with a computed attribute.
pub struct MapIter {
    input: Box<dyn PhysIter>,
    out: Slot,
    expr: CompiledPred,
}

impl MapIter {
    /// New map.
    pub fn new(input: Box<dyn PhysIter>, out: Slot, expr: CompiledPred) -> MapIter {
        MapIter { input, out, expr }
    }
}

impl PhysIter for MapIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.input.open(rt, seed);
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        let mut t = self.input.next(rt)?;
        let v = self.expr.eval(rt, &t);
        t[self.out] = v;
        Some(t)
    }

    fn close(&mut self, rt: &Runtime<'_>) {
        self.input.close(rt);
    }
}

/// Π_{a':a} compiled to a register copy (emitted only when the attribute
/// manager could not alias the two names, paper §5.1).
pub struct RenameCopyIter {
    input: Box<dyn PhysIter>,
    from: Slot,
    to: Slot,
}

impl RenameCopyIter {
    /// New copy-rename.
    pub fn new(input: Box<dyn PhysIter>, from: Slot, to: Slot) -> RenameCopyIter {
        RenameCopyIter { input, from, to }
    }
}

impl PhysIter for RenameCopyIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.input.open(rt, seed);
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        let mut t = self.input.next(rt)?;
        t[self.to] = t[self.from].clone();
        Some(t)
    }

    fn close(&mut self, rt: &Runtime<'_>) {
        self.input.close(rt);
    }
}

/// χ_cp:counter++ — the position counter (§3.3.3); resets when the
/// grouping attribute changes (stacked translation, §4.3.1).
pub struct CounterIter {
    input: Box<dyn PhysIter>,
    out: Slot,
    reset_on: Option<Slot>,
    count: f64,
    last_group: Option<GroupKey>,
}

impl CounterIter {
    /// New counter map.
    pub fn new(input: Box<dyn PhysIter>, out: Slot, reset_on: Option<Slot>) -> CounterIter {
        CounterIter { input, out, reset_on, count: 0.0, last_group: None }
    }
}

impl PhysIter for CounterIter {
    fn open(&mut self, rt: &Runtime<'_>, seed: &Tuple) {
        self.input.open(rt, seed);
        self.count = 0.0;
        self.last_group = None;
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        let mut t = self.input.next(rt)?;
        if let Some(slot) = self.reset_on {
            let key = GroupKey::of(t.get(slot).unwrap_or(&Value::Null), rt);
            if self.last_group.as_ref() != Some(&key) {
                self.count = 0.0;
                self.last_group = Some(key);
            }
        }
        self.count += 1.0;
        t[self.out] = Value::Num(self.count);
        Some(t)
    }

    fn close(&mut self, rt: &Runtime<'_>) {
        self.input.close(rt);
    }
}

/// ⊕ — sequence concatenation.
pub struct ConcatIter {
    parts: Vec<Box<dyn PhysIter>>,
    seed: Tuple,
    idx: usize,
    opened: bool,
}

impl ConcatIter {
    /// New concatenation.
    pub fn new(parts: Vec<Box<dyn PhysIter>>) -> ConcatIter {
        ConcatIter { parts, seed: Tuple::new(), idx: 0, opened: false }
    }
}

impl PhysIter for ConcatIter {
    fn open(&mut self, _rt: &Runtime<'_>, seed: &Tuple) {
        self.seed = seed.clone();
        self.idx = 0;
        self.opened = false;
    }

    fn next(&mut self, rt: &Runtime<'_>) -> Option<Tuple> {
        while self.idx < self.parts.len() {
            if !rt.gov.tick() {
                return None;
            }
            if !self.opened {
                self.parts[self.idx].open(rt, &self.seed);
                self.opened = true;
            }
            if let Some(t) = self.parts[self.idx].next(rt) {
                return Some(t);
            }
            self.parts[self.idx].close(rt);
            self.idx += 1;
            self.opened = false;
        }
        None
    }

    fn close(&mut self, rt: &Runtime<'_>) {
        // An early close can leave the current part open mid-stream.
        if self.opened {
            self.parts[self.idx].close(rt);
            self.opened = false;
        }
    }
}
