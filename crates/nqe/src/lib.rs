//! NQE — the Natix Query Execution engine (paper §5.2): an iterator-based
//! physical algebra executing translated XPath plans directly against the
//! storage interface, plus the NVM bytecode machine for scalar subscripts.
//!
//! * [`iter`] — one physical iterator per logical operator,
//! * [`governor`] — the per-query resource budget (memory, tuples,
//!   deadline, cancellation) charged by every materialising iterator,
//! * [`nvm`] — the register VM evaluating subscripts (with nested
//!   iterator access and smart aggregation),
//! * [`codegen`] — logical plan → iterators + NVM programs (slot
//!   resolution through the attribute manager),
//! * [`exec`] — the executor and the [`exec::evaluate`] convenience entry
//!   point.

pub mod analyze;
pub mod codegen;
pub mod exec;
pub mod governor;
pub mod iter;
pub mod json;
pub mod nvm;
pub mod profile;

pub use analyze::{
    execute_observed, explain_analyze, explain_analyze_governed, observe_governed, AnalyzeReport,
    CardinalityCheck, StorageReport,
};
pub use codegen::{build_physical, build_physical_profiled, FrameInfo, PhysicalQuery};
pub use exec::{evaluate, evaluate_governed, evaluate_with, Runtime};
pub use governor::{
    group_key_bytes, tuple_bytes, value_bytes, ChargeLedger, FailPoint, ResourceGovernor,
    DEFAULT_TICK_INTERVAL,
};
pub use json::Json;
pub use profile::{OpStats, Profile};
