//! Direct NVM coverage: every instruction class executed through
//! hand-assembled programs (the compiler-emitted paths are covered by the
//! engine tests; these pin the VM semantics themselves).

use std::collections::HashMap;

use algebra::scalar::{CmpMode, NodeFn, NumFn, StrFn};
use algebra::{Const, Value};
use xmlstore::{parse_document, ArenaStore, XmlStore};
use xpath_syntax::{ArithOp, CompOp};

use nqe::nvm::{run, Instr, Program};
use nqe::{ResourceGovernor, Runtime};

fn fixture() -> ArenaStore {
    parse_document(r#"<r><x id="a">7</x><y>text</y></r>"#).unwrap()
}

fn eval(store: &ArenaStore, instrs: Vec<Instr>, nregs: usize, result: usize) -> Value {
    let vars = HashMap::new();
    let gov = ResourceGovernor::unlimited();
    let rt = Runtime { store, vars: &vars, gov: &gov };
    let prog = Program { instrs, nregs, result };
    run(&prog, &rt, &vec![], &mut [])
}

fn s(v: &str) -> Instr {
    Instr::LoadConst { dst: 0, value: Const::Str(v.into()) }
}

#[test]
fn arithmetic_instructions() {
    let st = fixture();
    for (op, expect) in [
        (ArithOp::Add, 5.0),
        (ArithOp::Sub, 1.0),
        (ArithOp::Mul, 6.0),
        (ArithOp::Div, 1.5),
        (ArithOp::Mod, 1.0),
    ] {
        let v = eval(
            &st,
            vec![
                Instr::LoadConst { dst: 0, value: Const::Num(3.0) },
                Instr::LoadConst { dst: 1, value: Const::Num(2.0) },
                Instr::Arith { op, dst: 2, a: 0, b: 1 },
            ],
            3,
            2,
        );
        assert!(matches!(v, Value::Num(n) if n == expect), "{op:?}");
    }
    let v = eval(
        &st,
        vec![
            Instr::LoadConst { dst: 0, value: Const::Num(4.5) },
            Instr::Neg { dst: 1, a: 0 },
        ],
        2,
        1,
    );
    assert!(matches!(v, Value::Num(n) if n == -4.5));
}

#[test]
fn string_instructions() {
    let st = fixture();
    let cases: Vec<(StrFn, Vec<&str>, Value)> = vec![
        (StrFn::Concat, vec!["a", "b", "c"], Value::Str("abc".into())),
        (StrFn::Contains, vec!["hello", "ell"], Value::Bool(true)),
        (StrFn::StartsWith, vec!["hello", "he"], Value::Bool(true)),
        (StrFn::SubstringBefore, vec!["a-b", "-"], Value::Str("a".into())),
        (StrFn::SubstringAfter, vec!["a-b", "-"], Value::Str("b".into())),
        (StrFn::StringLength, vec!["abcd"], Value::Num(4.0)),
        (StrFn::NormalizeSpace, vec![" a  b "], Value::Str("a b".into())),
        (StrFn::Translate, vec!["bar", "abc", "ABC"], Value::Str("BAr".into())),
    ];
    for (f, args, expect) in cases {
        let mut instrs = Vec::new();
        let regs: Vec<usize> = (0..args.len()).collect();
        for (i, a) in args.iter().enumerate() {
            instrs.push(Instr::LoadConst { dst: i, value: Const::Str((*a).into()) });
        }
        let dst = args.len();
        instrs.push(Instr::StrOp { f, dst, args: regs });
        let v = eval(&st, instrs, dst + 1, dst);
        match (&v, &expect) {
            (Value::Str(a), Value::Str(b)) => assert_eq!(a, b, "{f:?}"),
            (Value::Bool(a), Value::Bool(b)) => assert_eq!(a, b, "{f:?}"),
            (Value::Num(a), Value::Num(b)) => assert_eq!(a, b, "{f:?}"),
            other => panic!("{f:?}: {other:?}"),
        }
    }
    // substring with 3 args.
    let v = eval(
        &fixture(),
        vec![
            Instr::LoadConst { dst: 0, value: Const::Str("12345".into()) },
            Instr::LoadConst { dst: 1, value: Const::Num(2.0) },
            Instr::LoadConst { dst: 2, value: Const::Num(3.0) },
            Instr::StrOp { f: StrFn::Substring, dst: 3, args: vec![0, 1, 2] },
        ],
        4,
        3,
    );
    assert!(matches!(v, Value::Str(x) if &*x == "234"));
}

#[test]
fn numeric_function_instructions() {
    let st = fixture();
    for (f, input, expect) in [
        (NumFn::Floor, 2.7, 2.0),
        (NumFn::Ceiling, 2.1, 3.0),
        (NumFn::Round, 2.5, 3.0),
        (NumFn::Round, -2.5, -2.0),
    ] {
        let v = eval(
            &st,
            vec![
                Instr::LoadConst { dst: 0, value: Const::Num(input) },
                Instr::NumOp { f, dst: 1, a: 0 },
            ],
            2,
            1,
        );
        assert!(matches!(v, Value::Num(n) if n == expect), "{f:?}({input})");
    }
}

#[test]
fn node_and_conversion_instructions() {
    let st = fixture();
    let x = {
        let r = st.first_child(st.root()).unwrap();
        st.first_child(r).unwrap()
    };
    let vars = HashMap::new();
    let gov = ResourceGovernor::unlimited();
    let rt = Runtime { store: &st, vars: &vars, gov: &gov };
    let tuple = vec![Value::Node(x)];
    let prog = Program {
        instrs: vec![
            Instr::LoadSlot { dst: 0, slot: 0 },
            Instr::NodeOp { f: NodeFn::Name, dst: 1, a: 0 },
        ],
        nregs: 2,
        result: 1,
    };
    assert!(matches!(run(&prog, &rt, &tuple, &mut []), Value::Str(s) if &*s == "x"));
    // Conversions chain: node → string → number → boolean.
    let prog = Program {
        instrs: vec![
            Instr::LoadSlot { dst: 0, slot: 0 },
            Instr::ToString { dst: 1, a: 0 },
            Instr::ToNumber { dst: 2, a: 1 },
            Instr::ToBoolean { dst: 3, a: 2 },
        ],
        nregs: 4,
        result: 3,
    };
    assert!(matches!(run(&prog, &rt, &tuple, &mut []), Value::Bool(true)));
    // NamespaceUri is always empty (verbatim names).
    let prog = Program {
        instrs: vec![
            Instr::LoadSlot { dst: 0, slot: 0 },
            Instr::NodeOp { f: NodeFn::NamespaceUri, dst: 1, a: 0 },
        ],
        nregs: 2,
        result: 1,
    };
    assert!(matches!(run(&prog, &rt, &tuple, &mut []), Value::Str(s) if s.is_empty()));
}

#[test]
fn variable_and_move_instructions() {
    let st = fixture();
    let mut vars = HashMap::new();
    vars.insert("v".to_owned(), Value::Num(9.0));
    let gov = ResourceGovernor::unlimited();
    let rt = Runtime { store: &st, vars: &vars, gov: &gov };
    let prog = Program {
        instrs: vec![
            Instr::LoadVar { dst: 0, name: "v".into() },
            Instr::Move { dst: 1, src: 0 },
        ],
        nregs: 2,
        result: 1,
    };
    assert!(matches!(run(&prog, &rt, &vec![], &mut []), Value::Num(n) if n == 9.0));
    // Unbound variables load Null.
    let prog = Program {
        instrs: vec![Instr::LoadVar { dst: 0, name: "missing".into() }],
        nregs: 1,
        result: 0,
    };
    assert!(run(&prog, &rt, &vec![], &mut []).is_null());
}

#[test]
fn comparison_modes() {
    let st = fixture();
    // Str mode, relational falls back to numeric comparison.
    let v = eval(
        &st,
        vec![
            s("10"),
            Instr::LoadConst { dst: 1, value: Const::Str("9".into()) },
            Instr::Cmp { op: CompOp::Gt, mode: CmpMode::Str, dst: 2, a: 0, b: 1 },
        ],
        3,
        2,
    );
    assert!(matches!(v, Value::Bool(true)), "'10' > '9' numerically");
    // Bool mode equality.
    let v = eval(
        &st,
        vec![
            Instr::LoadConst { dst: 0, value: Const::Bool(true) },
            Instr::LoadConst { dst: 1, value: Const::Num(3.0) },
            Instr::Cmp { op: CompOp::Eq, mode: CmpMode::Bool, dst: 2, a: 0, b: 1 },
        ],
        3,
        2,
    );
    assert!(matches!(v, Value::Bool(true)), "true = boolean(3)");
}

#[test]
fn jumps_skip_instructions() {
    let st = fixture();
    // JumpIfTrue skips the overwrite.
    let v = eval(
        &st,
        vec![
            Instr::LoadConst { dst: 0, value: Const::Num(1.0) },
            Instr::JumpIfTrue { cond: 0, target: 3 },
            Instr::LoadConst { dst: 0, value: Const::Num(99.0) },
        ],
        1,
        0,
    );
    assert!(matches!(v, Value::Num(n) if n == 1.0));
}
