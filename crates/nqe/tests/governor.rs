//! Governor accounting tests with hand-computed budgets: each test derives
//! an operator's exact materialization footprint from the byte estimators,
//! then asserts the budget trips at footprint−1 and clears at footprint,
//! and that the governor's high-water mark matches the arithmetic (charge
//! rollback keeps failed charges out of the gauges).

use std::collections::HashMap;

use algebra::{QueryError, ScanHint, Tuple, Value};
use compiler::{ResourceLimits, TranslateOptions};
use xmlstore::{parse_document, ArenaStore, Axis, XmlStore};
use xpath_syntax::NodeTest;

use nqe::iter::{GroupKey, PhysIter, SingletonIter, SortIter, TmpCsIter, UnnestMapIter};
use nqe::{group_key_bytes, tuple_bytes, ResourceGovernor, Runtime};

fn store() -> ArenaStore {
    parse_document(r#"<r><a><b>1</b><b>2</b></a><a><b>3</b></a></r>"#).unwrap()
}

/// Frame width used by the hand-assembled plans below.
const W: usize = 4;

fn seed(store: &ArenaStore) -> Tuple {
    let mut t = vec![Value::Null; W];
    t[0] = Value::Node(store.root());
    t
}

fn unnest(ctx: usize, out: usize, axis: Axis, test: NodeTest) -> Box<dyn PhysIter> {
    Box::new(UnnestMapIter::new(
        Box::new(SingletonIter::new()),
        ctx,
        out,
        axis,
        test,
        ScanHint::Auto,
        None,
    ))
}

fn drain(it: &mut dyn PhysIter, rt: &Runtime<'_>, seed: &Tuple) -> Vec<Tuple> {
    it.open(rt, seed);
    let mut out = Vec::new();
    while let Some(t) = it.next(rt) {
        out.push(t);
    }
    it.close(rt);
    out
}

/// One materialized tuple of the fixed frame: W slots, no heap payload
/// (Node/Null values only), so tuple_bytes is W × size_of::<Value>().
fn frame_bytes() -> u64 {
    let t = vec![Value::Null; W];
    tuple_bytes(&t)
}

#[test]
fn sort_trips_at_footprint_minus_one_and_clears_at_footprint() {
    let s = store();
    let vars = HashMap::new();
    // descendant::b yields 3 tuples; Sort parks all of them.
    let footprint = 3 * frame_bytes();

    // Exactly the footprint: the fill completes and the governor's
    // high-water mark equals the arithmetic.
    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_memory(footprint));
    let rt = Runtime { store: &s, vars: &vars, gov: &gov };
    let mut sort = SortIter::new(unnest(0, 1, Axis::Descendant, NodeTest::Name("b".into())), 1);
    let out = drain(&mut sort, &rt, &seed(&s));
    assert_eq!(out.len(), 3);
    assert!(gov.ok());
    assert_eq!(gov.high_water(), footprint, "peak equals the hand-computed footprint");
    assert_eq!(gov.transient_bytes(), 0, "everything released at close");

    // One byte short: the third charge is refused and rolled back, so the
    // high-water mark stays at two tuples.
    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_memory(footprint - 1));
    let rt = Runtime { store: &s, vars: &vars, gov: &gov };
    let mut sort = SortIter::new(unnest(0, 1, Axis::Descendant, NodeTest::Name("b".into())), 1);
    let out = drain(&mut sort, &rt, &seed(&s));
    assert!(out.is_empty(), "a tripped sort emits nothing");
    match gov.error() {
        Some(QueryError::MemoryExceeded { limit, requested }) => {
            assert_eq!(limit, footprint - 1);
            assert_eq!(requested, footprint, "the refused charge needed the full footprint");
        }
        other => panic!("expected MemoryExceeded, got {other:?}"),
    }
    assert_eq!(gov.high_water(), 2 * frame_bytes(), "failed charge rolled back");
    assert_eq!(gov.transient_bytes(), 0, "no leaked charges after close");
}

#[test]
fn tmpcs_trips_at_footprint_minus_one_and_clears_at_footprint() {
    let s = store();
    let vars = HashMap::new();
    // Ungrouped Tmp^cs over descendant::b parks all 3 tuples to annotate
    // the context-sequence size.
    let footprint = 3 * frame_bytes();

    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_memory(footprint));
    let rt = Runtime { store: &s, vars: &vars, gov: &gov };
    let mut tmpcs =
        TmpCsIter::new(unnest(0, 1, Axis::Descendant, NodeTest::Name("b".into())), 2, None);
    let out = drain(&mut tmpcs, &rt, &seed(&s));
    assert_eq!(out.len(), 3);
    assert!(gov.ok());
    assert_eq!(gov.high_water(), footprint);

    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_memory(footprint - 1));
    let rt = Runtime { store: &s, vars: &vars, gov: &gov };
    let mut tmpcs =
        TmpCsIter::new(unnest(0, 1, Axis::Descendant, NodeTest::Name("b".into())), 2, None);
    let out = drain(&mut tmpcs, &rt, &seed(&s));
    assert!(out.is_empty());
    assert!(matches!(gov.error(), Some(QueryError::MemoryExceeded { .. })));
    assert_eq!(gov.high_water(), 2 * frame_bytes());
    assert_eq!(gov.transient_bytes(), 0);
}

#[test]
fn tuple_budget_counts_materialized_tuples_only() {
    let s = store();
    let vars = HashMap::new();
    // Sort materializes 3 tuples; a budget of 2 trips, 3 clears. Streaming
    // operators upstream never charge the tuple budget.
    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_tuples(3));
    let rt = Runtime { store: &s, vars: &vars, gov: &gov };
    let mut sort = SortIter::new(unnest(0, 1, Axis::Descendant, NodeTest::Name("b".into())), 1);
    assert_eq!(drain(&mut sort, &rt, &seed(&s)).len(), 3);
    assert!(gov.ok());
    assert_eq!(gov.tuples_charged(), 3);

    let gov = ResourceGovernor::new(ResourceLimits::unlimited().with_max_tuples(2));
    let rt = Runtime { store: &s, vars: &vars, gov: &gov };
    let mut sort = SortIter::new(unnest(0, 1, Axis::Descendant, NodeTest::Name("b".into())), 1);
    assert!(drain(&mut sort, &rt, &seed(&s)).is_empty());
    assert!(matches!(gov.error(), Some(QueryError::TuplesExceeded { limit: 2 })));
}

#[test]
fn dedup_bitsets_charge_one_word_block_each() {
    // On an indexed store the Π^D seen-sets are rank bitsets of
    // ⌈index len / 64⌉ words, charged once when the first node key
    // arrives. The improved plan for //b/parent::a carries two of them,
    // both alive at the peak (descendant-or-self step + parent step),
    // plus the 2 result node-ids accumulated alongside.
    let s = store();
    let idx_len = s.structural_index().expect("arena is indexed").len();
    let bitset_bytes = (idx_len.div_ceil(64) * 8) as u64;
    let node_id = std::mem::size_of::<xmlstore::NodeId>() as u64;
    let footprint = 2 * bitset_bytes + 2 * node_id;
    let limits = ResourceLimits::unlimited().with_max_memory(footprint);
    let out = nqe::evaluate_governed(
        &s,
        "//b/parent::a",
        &TranslateOptions::improved(),
        &limits,
        s.root(),
        &HashMap::new(),
    );
    assert!(out.is_ok(), "exact footprint clears: {out:?}");

    let limits = ResourceLimits::unlimited().with_max_memory(footprint - 1);
    let out = nqe::evaluate_governed(
        &s,
        "//b/parent::a",
        &TranslateOptions::improved(),
        &limits,
        s.root(),
        &HashMap::new(),
    );
    assert!(
        matches!(out, Err(compiler::PipelineError::Resource(QueryError::MemoryExceeded { .. }))),
        "one byte short trips: {out:?}"
    );
}

#[test]
fn dedup_seen_set_charges_group_keys_without_index() {
    // Hiding the index forces Π^D back onto the hash seen-sets: one
    // GroupKey per distinct value. The improved plan for //b/parent::a
    // carries two of them, both alive at the peak: the
    // descendant-or-self step's (all 10 nodes of the fixture: root,
    // <r>, 2×<a>, 3×<b>, 3 text nodes) and the parent step's (2 distinct
    // <a>), plus the 2 result node-ids accumulated alongside.
    let s = store();
    let plain = xmlstore::NoIndex(&s);
    let key_bytes = group_key_bytes(&GroupKey::Null);
    let node_id = std::mem::size_of::<xmlstore::NodeId>() as u64;
    let footprint = 10 * key_bytes + 2 * key_bytes + 2 * node_id;
    let limits = ResourceLimits::unlimited().with_max_memory(footprint);
    let out = nqe::evaluate_governed(
        &plain,
        "//b/parent::a",
        &TranslateOptions::improved(),
        &limits,
        plain.root(),
        &HashMap::new(),
    );
    assert!(out.is_ok(), "exact footprint clears: {out:?}");

    let limits = ResourceLimits::unlimited().with_max_memory(footprint - 1);
    let out = nqe::evaluate_governed(
        &plain,
        "//b/parent::a",
        &TranslateOptions::improved(),
        &limits,
        plain.root(),
        &HashMap::new(),
    );
    assert!(
        matches!(out, Err(compiler::PipelineError::Resource(QueryError::MemoryExceeded { .. }))),
        "one byte short trips: {out:?}"
    );
}

#[test]
fn profiler_gauges_reconcile_with_governor_accounting() {
    // Dominant-materializer plan: the step's positional Tmp^cs is the only
    // operator parking tuples while the budget peaks, so its mem_peak gauge
    // equals the governor's high-water mark; and cumulative charges are
    // conserved — the per-operator mem_charged gauges plus the result
    // accumulator (one NodeId per result node) sum to the governor total.
    let s = store();
    let limits = ResourceLimits::unlimited();
    let (out, report) = nqe::explain_analyze_governed(
        &s,
        "/r/a/b[position()=last()]",
        &TranslateOptions::improved(),
        &limits,
        s.root(),
        &HashMap::new(),
    )
    .expect("compiles");
    let out = out.expect("unlimited run");
    let gauge_values = |name: &str| -> Vec<u64> {
        report
            .profile
            .entries
            .iter()
            .flat_map(|op| {
                op.stats
                    .lock()
                    .gauges
                    .iter()
                    .filter(|(g, _)| *g == name)
                    .map(|(_, v)| *v)
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    let peaks = gauge_values("mem_peak");
    assert!(!peaks.is_empty(), "materializing operators export mem_peak gauges");
    assert_eq!(
        report.resources.high_water_bytes,
        peaks.iter().copied().max().unwrap(),
        "governor high-water equals the dominant operator's peak gauge"
    );
    let result_nodes = match &out {
        algebra::QueryOutput::Nodes(ns) => ns.len() as u64,
        other => panic!("expected nodes, got {other:?}"),
    };
    let accumulator = result_nodes * std::mem::size_of::<xmlstore::NodeId>() as u64;
    assert_eq!(
        report.resources.charged_bytes,
        gauge_values("mem_charged").iter().sum::<u64>() + accumulator,
        "per-operator charged gauges plus the result accumulator sum to the governor total"
    );
    assert_eq!(report.resources.transient_bytes, 0);
}
