//! Direct unit tests of the physical iterators, driven without the
//! compiler: plans are assembled by hand so each operator's contract
//! (open/next/close, seeding, caching) is observable in isolation.

use std::collections::HashMap;

use algebra::scalar::{AggFunc, CmpMode};
use algebra::{Const, ScanHint, Tuple, Value};
use xmlstore::{parse_document, ArenaStore, Axis, XmlStore};
use xpath_syntax::{CompOp, NodeTest};

use nqe::iter::{
    CompiledPred, ConcatIter, CounterIter, DJoinIter, DedupIter, MemoXIter, NestedEval, PhysIter,
    SelectIter, SingletonIter, SortIter, TmpCsIter, UnnestMapIter,
};
use nqe::nvm::{Instr, Program};
use nqe::{ResourceGovernor, Runtime};

fn store() -> ArenaStore {
    parse_document(r#"<r><a><b>1</b><b>2</b></a><a><b>3</b></a></r>"#).unwrap()
}

fn rt<'a>(
    s: &'a ArenaStore,
    vars: &'a HashMap<String, Value>,
    gov: &'a ResourceGovernor,
) -> Runtime<'a> {
    Runtime { store: s, vars, gov }
}

/// Frame: slot 0 = context node, slot 1 = step output, slot 2 = scratch.
const W: usize = 4;

fn seed(store: &ArenaStore) -> Tuple {
    let mut t = vec![Value::Null; W];
    t[0] = Value::Node(store.root());
    t
}

fn drain(it: &mut dyn PhysIter, rt: &Runtime<'_>, seed: &Tuple) -> Vec<Tuple> {
    it.open(rt, seed);
    let mut out = Vec::new();
    while let Some(t) = it.next(rt) {
        out.push(t);
    }
    it.close(rt);
    out
}

fn unnest(ctx: usize, out: usize, axis: Axis, test: NodeTest) -> Box<dyn PhysIter> {
    Box::new(UnnestMapIter::new(
        Box::new(SingletonIter::new()),
        ctx,
        out,
        axis,
        test,
        ScanHint::Auto,
        None,
    ))
}

#[test]
fn singleton_yields_seed_once_per_open() {
    let s = store();
    let vars = HashMap::new();
    let gov = ResourceGovernor::unlimited();
    let rt = rt(&s, &vars, &gov);
    let mut it = SingletonIter::new();
    assert_eq!(drain(&mut it, &rt, &seed(&s)).len(), 1);
    // Re-open works (d-join contract).
    assert_eq!(drain(&mut it, &rt, &seed(&s)).len(), 1);
}

#[test]
fn unnest_map_walks_axis_in_order() {
    let s = store();
    let vars = HashMap::new();
    let gov = ResourceGovernor::unlimited();
    let rt = rt(&s, &vars, &gov);
    let mut it = unnest(0, 1, Axis::Descendant, NodeTest::Name("b".into()));
    let out = drain(it.as_mut(), &rt, &seed(&s));
    let values: Vec<String> =
        out.iter().map(|t| t[1].as_node().map(|n| s.string_value(n)).unwrap()).collect();
    assert_eq!(values, ["1", "2", "3"]);
    // Unknown names match nothing (resolved-test Impossible path).
    let mut it = unnest(0, 1, Axis::Descendant, NodeTest::Name("zzz".into()));
    assert!(drain(it.as_mut(), &rt, &seed(&s)).is_empty());
}

#[test]
fn djoin_reopens_dependent_side_per_left_tuple() {
    let s = store();
    let vars = HashMap::new();
    let gov = ResourceGovernor::unlimited();
    let rt = rt(&s, &vars, &gov);
    // left: a elements into slot 1; right: b children of slot 1 into 2.
    let left = unnest(0, 1, Axis::Descendant, NodeTest::Name("a".into()));
    let right = Box::new(UnnestMapIter::new(
        Box::new(SingletonIter::new()),
        1,
        2,
        Axis::Child,
        NodeTest::Name("b".into()),
        ScanHint::Auto,
        None,
    ));
    let mut join = DJoinIter::new(left, right);
    let out = drain(&mut join, &rt, &seed(&s));
    assert_eq!(out.len(), 3);
    // Every output tuple carries both the left and the right binding.
    for t in &out {
        assert!(t[1].as_node().is_some());
        assert!(t[2].as_node().is_some());
    }
}

#[test]
fn counter_resets_on_group_change() {
    let s = store();
    let vars = HashMap::new();
    let gov = ResourceGovernor::unlimited();
    let rt = rt(&s, &vars, &gov);
    let left = unnest(0, 1, Axis::Descendant, NodeTest::Name("a".into()));
    let step = Box::new(UnnestMapIter::new(
        left,
        1,
        2,
        Axis::Child,
        NodeTest::Name("b".into()),
        ScanHint::Auto,
        None,
    ));
    let mut counter = CounterIter::new(step, 3, Some(1));
    let out = drain(&mut counter, &rt, &seed(&s));
    let positions: Vec<f64> = out
        .iter()
        .map(|t| match t[3] {
            Value::Num(n) => n,
            _ => panic!(),
        })
        .collect();
    assert_eq!(positions, [1.0, 2.0, 1.0], "counter must reset on the second <a>");
}

#[test]
fn tmpcs_annotates_group_sizes() {
    let s = store();
    let vars = HashMap::new();
    let gov = ResourceGovernor::unlimited();
    let rt = rt(&s, &vars, &gov);
    let left = unnest(0, 1, Axis::Descendant, NodeTest::Name("a".into()));
    let step = Box::new(UnnestMapIter::new(
        left,
        1,
        2,
        Axis::Child,
        NodeTest::Name("b".into()),
        ScanHint::Auto,
        None,
    ));
    let mut tmpcs = TmpCsIter::new(step, 3, Some(1));
    let out = drain(&mut tmpcs, &rt, &seed(&s));
    let sizes: Vec<f64> = out
        .iter()
        .map(|t| match t[3] {
            Value::Num(n) => n,
            _ => panic!(),
        })
        .collect();
    assert_eq!(sizes, [2.0, 2.0, 1.0], "per-context sizes");
    // Ungrouped variant counts the whole input (Tmp^cs).
    let left = unnest(0, 1, Axis::Descendant, NodeTest::Name("a".into()));
    let step = Box::new(UnnestMapIter::new(
        left,
        1,
        2,
        Axis::Child,
        NodeTest::Name("b".into()),
        ScanHint::Auto,
        None,
    ));
    let mut tmpcs = TmpCsIter::new(step, 3, None);
    let out = drain(&mut tmpcs, &rt, &seed(&s));
    assert!(out.iter().all(|t| matches!(t[3], Value::Num(n) if n == 3.0)));
}

#[test]
fn dedup_keeps_first_occurrence() {
    let s = store();
    let vars = HashMap::new();
    let gov = ResourceGovernor::unlimited();
    let rt = rt(&s, &vars, &gov);
    // b/parent::a produces each <a> per child b.
    let bs = unnest(0, 1, Axis::Descendant, NodeTest::Name("b".into()));
    let parents = Box::new(UnnestMapIter::new(
        bs,
        1,
        2,
        Axis::Parent,
        NodeTest::Wildcard,
        ScanHint::Auto,
        None,
    ));
    let mut dedup = DedupIter::new(parents, 2);
    let out = drain(&mut dedup, &rt, &seed(&s));
    assert_eq!(out.len(), 2, "three b-parents collapse to two distinct <a>");
}

#[test]
fn sort_establishes_document_order() {
    let s = store();
    let vars = HashMap::new();
    let gov = ResourceGovernor::unlimited();
    let rt = rt(&s, &vars, &gov);
    // preceding axis yields reverse document order; Sort flips it back.
    let last_b = {
        let mut it = unnest(0, 1, Axis::Descendant, NodeTest::Name("b".into()));
        let out = drain(it.as_mut(), &rt, &seed(&s));
        out.last().unwrap().clone()
    };
    let prec = Box::new(UnnestMapIter::new(
        Box::new(SingletonIter::new()),
        1,
        2,
        Axis::Preceding,
        NodeTest::Name("b".into()),
        ScanHint::Auto,
        None,
    ));
    let mut sort = SortIter::new(prec, 2);
    let out = drain(&mut sort, &rt, &last_b);
    let values: Vec<String> =
        out.iter().map(|t| t[2].as_node().map(|n| s.string_value(n)).unwrap()).collect();
    assert_eq!(values, ["1", "2"]);
}

#[test]
fn select_filters_by_compiled_predicate() {
    let s = store();
    let vars = HashMap::new();
    let gov = ResourceGovernor::unlimited();
    let rt = rt(&s, &vars, &gov);
    // pred: number(string-value of slot1 node) >= 2
    let pred = CompiledPred {
        prog: Program {
            instrs: vec![
                Instr::LoadSlot { dst: 0, slot: 1 },
                Instr::ToNumber { dst: 1, a: 0 },
                Instr::LoadConst { dst: 2, value: Const::Num(2.0) },
                Instr::Cmp { op: CompOp::Ge, mode: CmpMode::Num, dst: 3, a: 1, b: 2 },
            ],
            nregs: 4,
            result: 3,
        },
        nested: vec![],
    };
    let bs = unnest(0, 1, Axis::Descendant, NodeTest::Name("b".into()));
    let mut select = SelectIter::new(bs, pred);
    let out = drain(&mut select, &rt, &seed(&s));
    assert_eq!(out.len(), 2);
}

#[test]
fn concat_chains_parts_with_same_seed() {
    let s = store();
    let vars = HashMap::new();
    let gov = ResourceGovernor::unlimited();
    let rt = rt(&s, &vars, &gov);
    let p1 = unnest(0, 1, Axis::Descendant, NodeTest::Name("a".into()));
    let p2 = unnest(0, 1, Axis::Descendant, NodeTest::Name("b".into()));
    let mut concat = ConcatIter::new(vec![p1, p2]);
    let out = drain(&mut concat, &rt, &seed(&s));
    assert_eq!(out.len(), 5, "2 a's then 3 b's");
}

#[test]
fn memox_replays_on_key_hits() {
    let s = store();
    let vars = HashMap::new();
    let gov = ResourceGovernor::unlimited();
    let rt = rt(&s, &vars, &gov);
    let inner = unnest(1, 2, Axis::Child, NodeTest::Name("b".into()));
    let mut memo = MemoXIter::new(inner, 1);

    // Seed with the first <a>.
    let a1 = {
        let mut it = unnest(0, 1, Axis::Descendant, NodeTest::Name("a".into()));
        drain(it.as_mut(), &rt, &seed(&s))[0].clone()
    };
    let first = drain(&mut memo, &rt, &a1);
    assert_eq!(first.len(), 2);
    assert_eq!((memo.hits, memo.misses), (0, 1));
    // Same key again: served from the table.
    let again = drain(&mut memo, &rt, &a1);
    assert_eq!(again.len(), 2);
    assert_eq!((memo.hits, memo.misses), (1, 1));
}

#[test]
fn memox_discards_partial_recordings() {
    let s = store();
    let vars = HashMap::new();
    let gov = ResourceGovernor::unlimited();
    let rt = rt(&s, &vars, &gov);
    let inner = unnest(1, 2, Axis::Child, NodeTest::Name("b".into()));
    let mut memo = MemoXIter::new(inner, 1);
    let a1 = {
        let mut it = unnest(0, 1, Axis::Descendant, NodeTest::Name("a".into()));
        drain(it.as_mut(), &rt, &seed(&s))[0].clone()
    };
    // Early exit: take one tuple, close.
    memo.open(&rt, &a1);
    assert!(memo.next(&rt).is_some());
    memo.close(&rt);
    // The partial sequence must not have been cached.
    let full = drain(&mut memo, &rt, &a1);
    assert_eq!(full.len(), 2);
    assert_eq!(memo.misses, 2, "second open is a miss again");
}

#[test]
fn nested_eval_aggregates_and_caches_independent_plans() {
    let s = store();
    let vars = HashMap::new();
    let gov = ResourceGovernor::unlimited();
    let rt = rt(&s, &vars, &gov);
    let plan = unnest(0, 1, Axis::Descendant, NodeTest::Name("b".into()));
    let mut agg = NestedEval::new(plan, 1, AggFunc::Count, false);
    match agg.evaluate(&rt, &seed(&s)) {
        Value::Num(n) => assert_eq!(n, 3.0),
        other => panic!("{other:?}"),
    }
    // Sum over the b contents.
    let plan = unnest(0, 1, Axis::Descendant, NodeTest::Name("b".into()));
    let mut agg = NestedEval::new(plan, 1, AggFunc::Sum, false);
    match agg.evaluate(&rt, &seed(&s)) {
        Value::Num(n) => assert_eq!(n, 6.0),
        other => panic!("{other:?}"),
    }
    // Min/Max.
    for (f, expect) in [(AggFunc::Min, 1.0), (AggFunc::Max, 3.0)] {
        let plan = unnest(0, 1, Axis::Descendant, NodeTest::Name("b".into()));
        let mut agg = NestedEval::new(plan, 1, f, false);
        match agg.evaluate(&rt, &seed(&s)) {
            Value::Num(n) => assert_eq!(n, expect),
            other => panic!("{other:?}"),
        }
    }
    // FirstNode picks document order.
    let plan = unnest(0, 1, Axis::Descendant, NodeTest::Name("b".into()));
    let mut agg = NestedEval::new(plan, 1, AggFunc::FirstNode, false);
    match agg.evaluate(&rt, &seed(&s)) {
        Value::Node(n) => assert_eq!(s.string_value(n), "1"),
        other => panic!("{other:?}"),
    }
    // Exists with empty input.
    let plan = unnest(0, 1, Axis::Descendant, NodeTest::Name("none".into()));
    let mut agg = NestedEval::new(plan, 1, AggFunc::Exists, false);
    assert!(matches!(agg.evaluate(&rt, &seed(&s)), Value::Bool(false)));
}

#[test]
fn semi_and_anti_join_are_complementary() {
    use nqe::iter::SemiJoinIter;
    let s = store();
    let vars = HashMap::new();
    let gov = ResourceGovernor::unlimited();
    let rt = rt(&s, &vars, &gov);
    // left: all b's (slot 1); right: b's with value >= 2 (slot 2);
    // pred: string-values equal.
    let pred = || CompiledPred {
        prog: Program {
            instrs: vec![
                Instr::LoadSlot { dst: 0, slot: 1 },
                Instr::ToString { dst: 1, a: 0 },
                Instr::LoadSlot { dst: 2, slot: 2 },
                Instr::ToString { dst: 3, a: 2 },
                Instr::Cmp { op: CompOp::Eq, mode: CmpMode::Str, dst: 4, a: 1, b: 3 },
            ],
            nregs: 5,
            result: 4,
        },
        nested: vec![],
    };
    let right = || -> Box<dyn PhysIter> {
        let bs = unnest(0, 2, Axis::Descendant, NodeTest::Name("b".into()));
        Box::new(SelectIter::new(
            bs,
            CompiledPred {
                prog: Program {
                    instrs: vec![
                        Instr::LoadSlot { dst: 0, slot: 2 },
                        Instr::ToNumber { dst: 1, a: 0 },
                        Instr::LoadConst { dst: 2, value: Const::Num(2.0) },
                        Instr::Cmp { op: CompOp::Ge, mode: CmpMode::Num, dst: 3, a: 1, b: 2 },
                    ],
                    nregs: 4,
                    result: 3,
                },
                nested: vec![],
            },
        ))
    };
    let semi_out = {
        let left = unnest(0, 1, Axis::Descendant, NodeTest::Name("b".into()));
        let mut semi = SemiJoinIter::new(left, right(), pred(), vec![2], false);
        drain(&mut semi, &rt, &seed(&s))
    };
    let anti_out = {
        let left = unnest(0, 1, Axis::Descendant, NodeTest::Name("b".into()));
        let mut anti = SemiJoinIter::new(left, right(), pred(), vec![2], true);
        drain(&mut anti, &rt, &seed(&s))
    };
    let values = |ts: &[Tuple]| -> Vec<String> {
        ts.iter().map(|t| t[1].as_node().map(|n| s.string_value(n)).unwrap()).collect()
    };
    assert_eq!(values(&semi_out), ["2", "3"]);
    assert_eq!(values(&anti_out), ["1"]);
}
