//! End-to-end engine tests: compile with both translations and execute
//! against in-memory documents, asserting exact results.

use std::collections::HashMap;

use algebra::{QueryOutput, Value};
use compiler::TranslateOptions;
use nqe::{evaluate, evaluate_with};
use xmlstore::{parse_document, ArenaStore, NodeId, XmlStore};

const DOC: &str = r#"<library>
  <book id="b1" year="1994" lang="en"><title>TCP Illustrated</title><author>Stevens</author><price>65.95</price></book>
  <book id="b2" year="1992"><title>Advanced Unix</title><author>Stevens</author><price>65.95</price></book>
  <book id="b3" year="2000"><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author><author>Suciu</author><price>39.95</price></book>
  <book id="b4" year="1999"><title>Economics</title><author>Bonds</author><price>10.00</price></book>
  <magazine id="m1"><title>Economist</title></magazine>
</library>"#;

fn both(doc: &ArenaStore, query: &str) -> QueryOutput {
    let improved = evaluate(doc, query, &TranslateOptions::improved())
        .unwrap_or_else(|e| panic!("improved `{query}`: {e}"));
    let canonical = evaluate(doc, query, &TranslateOptions::canonical())
        .unwrap_or_else(|e| panic!("canonical `{query}`: {e}"));
    assert_eq!(improved, canonical, "translations disagree on `{query}`");
    improved
}

fn doc() -> ArenaStore {
    parse_document(DOC).unwrap()
}

fn names(store: &ArenaStore, out: &QueryOutput) -> Vec<String> {
    out.as_nodes()
        .expect("node-set result")
        .iter()
        .map(|&n| store.node_name(n))
        .collect()
}

fn strings(store: &ArenaStore, out: &QueryOutput) -> Vec<String> {
    out.as_nodes()
        .expect("node-set result")
        .iter()
        .map(|&n| store.string_value(n))
        .collect()
}

#[test]
fn simple_child_paths() {
    let d = doc();
    let r = both(&d, "/library/book/title");
    assert_eq!(
        strings(&d, &r),
        [
            "TCP Illustrated",
            "Advanced Unix",
            "Data on the Web",
            "Economics"
        ]
    );
    let r = both(&d, "/library/*/title");
    assert_eq!(strings(&d, &r).len(), 5);
}

#[test]
fn attribute_axis() {
    let d = doc();
    let r = both(&d, "/library/book/@id");
    assert_eq!(strings(&d, &r), ["b1", "b2", "b3", "b4"]);
    let r = both(&d, "/library/book/@missing");
    assert_eq!(strings(&d, &r), Vec::<String>::new());
}

#[test]
fn descendant_and_wildcard() {
    let d = doc();
    let r = both(&d, "//title");
    assert_eq!(strings(&d, &r).len(), 5);
    let r = both(&d, "/descendant::author");
    assert_eq!(strings(&d, &r).len(), 6);
}

#[test]
fn positional_predicates() {
    let d = doc();
    let r = both(&d, "/library/book[1]/title");
    assert_eq!(strings(&d, &r), ["TCP Illustrated"]);
    let r = both(&d, "/library/book[position() = 3]/title");
    assert_eq!(strings(&d, &r), ["Data on the Web"]);
    let r = both(&d, "/library/book[position() < 3]/@id");
    assert_eq!(strings(&d, &r), ["b1", "b2"]);
    let r = both(&d, "/library/book[last()]/title");
    assert_eq!(strings(&d, &r), ["Economics"]);
    let r = both(&d, "/library/book[position() = last() - 1]/@id");
    assert_eq!(strings(&d, &r), ["b3"]);
    let r = both(&d, "/library/book[position() = last()][1]/@id");
    assert_eq!(strings(&d, &r), ["b4"]);
}

#[test]
fn positional_counting_is_per_context() {
    // Each book's first author, not the first author overall.
    let d = doc();
    let r = both(&d, "/library/book/author[1]");
    assert_eq!(strings(&d, &r), ["Stevens", "Stevens", "Abiteboul", "Bonds"]);
    let r = both(&d, "/library/book/author[last()]");
    assert_eq!(strings(&d, &r), ["Stevens", "Stevens", "Suciu", "Bonds"]);
}

#[test]
fn reverse_axis_positions() {
    let d = doc();
    // preceding-sibling positions count backwards from the context node.
    let r = both(&d, "/library/book[@id='b3']/preceding-sibling::*[1]/@id");
    assert_eq!(strings(&d, &r), ["b2"]);
    let r = both(&d, "/library/book[@id='b3']/preceding-sibling::*[2]/@id");
    assert_eq!(strings(&d, &r), ["b1"]);
    // ancestor axis: nearest first.
    let r = both(&d, "//price[../@id='b1']/ancestor::*[1]");
    assert_eq!(names(&d, &r), ["book"]);
    let r = both(&d, "//price[../@id='b1']/ancestor::*[2]");
    assert_eq!(names(&d, &r), ["library"]);
}

#[test]
fn string_predicates() {
    let d = doc();
    let r = both(&d, "/library/book[author = 'Stevens']/@id");
    assert_eq!(strings(&d, &r), ["b1", "b2"]);
    let r = both(&d, "/library/book[@year = '1999']/title");
    assert_eq!(strings(&d, &r), ["Economics"]);
    let r = both(&d, "/library/book[starts-with(title, 'T')]/@id");
    assert_eq!(strings(&d, &r), ["b1"]);
    let r = both(&d, "/library/book[contains(title, 'the')]/@id");
    assert_eq!(strings(&d, &r), ["b3"]);
}

#[test]
fn numeric_predicates_and_functions() {
    let d = doc();
    let r = both(&d, "/library/book[price < 40]/@id");
    assert_eq!(strings(&d, &r), ["b3", "b4"]);
    let r = both(&d, "/library/book[count(author) = 3]/@id");
    assert_eq!(strings(&d, &r), ["b3"]);
    let r = both(&d, "/library/book[count(author) > 1]/@id");
    assert_eq!(strings(&d, &r), ["b3"]);
}

#[test]
fn scalar_queries() {
    let d = doc();
    assert_eq!(both(&d, "count(/library/book)"), QueryOutput::Num(4.0));
    assert_eq!(both(&d, "count(//author)"), QueryOutput::Num(6.0));
    assert_eq!(
        both(&d, "sum(/library/book/price)"),
        QueryOutput::Num(65.95 + 65.95 + 39.95 + 10.0)
    );
    assert_eq!(both(&d, "1 + 2 * 3"), QueryOutput::Num(7.0));
    assert_eq!(
        both(&d, "string(/library/book[1]/title)"),
        QueryOutput::Str("TCP Illustrated".into())
    );
    assert_eq!(both(&d, "string-length(string(/library/book[4]/title))"), QueryOutput::Num(9.0));
    assert_eq!(both(&d, "boolean(//magazine)"), QueryOutput::Bool(true));
    assert_eq!(both(&d, "boolean(//newspaper)"), QueryOutput::Bool(false));
    assert_eq!(both(&d, "not(//newspaper)"), QueryOutput::Bool(true));
    assert_eq!(both(&d, "name(/library/*[5])"), QueryOutput::Str("magazine".into()));
    assert_eq!(both(&d, "concat('a', 'b', 'c')"), QueryOutput::Str("abc".into()));
}

#[test]
fn nodeset_comparisons_existential() {
    let d = doc();
    // Equal if ANY pair matches.
    assert_eq!(both(&d, "/library/book/author = 'Stevens'"), QueryOutput::Bool(true));
    assert_eq!(both(&d, "/library/book/author = 'Nobody'"), QueryOutput::Bool(false));
    // set ≠ set: any differing pair.
    assert_eq!(
        both(&d, "/library/book/author != /library/book/author"),
        QueryOutput::Bool(true)
    );
    // A singleton set differs-from-itself is false.
    assert_eq!(
        both(&d, "/library/book[4]/author != /library/book[4]/author"),
        QueryOutput::Bool(false)
    );
    // set = set when they share a value.
    assert_eq!(
        both(&d, "/library/book[1]/author = /library/book[2]/author"),
        QueryOutput::Bool(true)
    );
    assert_eq!(
        both(&d, "/library/book[1]/author = /library/book[3]/author"),
        QueryOutput::Bool(false)
    );
    // Relational against numbers (existential).
    assert_eq!(both(&d, "/library/book/price < 20"), QueryOutput::Bool(true));
    assert_eq!(both(&d, "/library/book/price < 5"), QueryOutput::Bool(false));
    assert_eq!(both(&d, "/library/book/price > 60"), QueryOutput::Bool(true));
    // Two node-sets relational: min/max semantics.
    assert_eq!(
        both(&d, "/library/book[4]/price < /library/book[3]/price"),
        QueryOutput::Bool(true)
    );
    assert_eq!(
        both(&d, "/library/book[3]/price < /library/book[4]/price"),
        QueryOutput::Bool(false)
    );
    // Boolean comparison with node-set: existence.
    assert_eq!(both(&d, "//magazine = true()"), QueryOutput::Bool(true));
    assert_eq!(both(&d, "//nothing = false()"), QueryOutput::Bool(true));
}

#[test]
fn unions() {
    let d = doc();
    let r = both(&d, "/library/book/title | /library/magazine/title");
    assert_eq!(strings(&d, &r).len(), 5);
    // Overlapping unions deduplicate.
    let r = both(&d, "//book | /library/book");
    assert_eq!(strings(&d, &r).len(), 4);
}

#[test]
fn filter_expressions() {
    let d = doc();
    let r = both(&d, "(/library/book/title | /library/magazine/title)[2]");
    assert_eq!(strings(&d, &r), ["Advanced Unix"]);
    let r = both(&d, "(//book | //magazine)[last()]");
    assert_eq!(names(&d, &r), ["magazine"]);
    let r = both(&d, "(//author)[contains(., 'o')]");
    assert_eq!(strings(&d, &r), ["Abiteboul", "Bonds"]);
}

#[test]
fn general_path_expressions() {
    let d = doc();
    let r = both(&d, "(//book[@id='b3'])/author[2]");
    assert_eq!(strings(&d, &r), ["Buneman"]);
    let r = both(&d, "id('b2')/title");
    assert_eq!(strings(&d, &r), ["Advanced Unix"]);
}

#[test]
fn id_function() {
    let d = doc();
    let r = both(&d, "id('b1')");
    assert_eq!(strings(&d, &names_helper(&d, r)), Vec::<String>::new());
    // direct:
    let r = both(&d, "id('b1')/@year");
    assert_eq!(strings(&d, &r), ["1994"]);
    // whitespace-separated list of IDs.
    let r = both(&d, "id('b1 b3')/@id");
    assert_eq!(strings(&d, &r), ["b1", "b3"]);
    // unknown IDs silently dropped; duplicates collapsed.
    let r = both(&d, "id('zz b2 b2')/@id");
    assert_eq!(strings(&d, &r), ["b2"]);
}

// id('b1') returns the element; keep a helper to keep the assert shape.
fn names_helper(_d: &ArenaStore, r: QueryOutput) -> QueryOutput {
    match r {
        QueryOutput::Nodes(ns) => {
            assert_eq!(ns.len(), 1);
            QueryOutput::Nodes(vec![])
        }
        other => other,
    }
}

#[test]
fn nested_path_predicates() {
    let d = doc();
    let r = both(&d, "/library/book[author]/@id");
    assert_eq!(strings(&d, &r), ["b1", "b2", "b3", "b4"]);
    let r = both(&d, "/library/*[not(author)]/@id");
    assert_eq!(strings(&d, &r), ["m1"]);
    let r = both(&d, "/library/book[title[contains(., 'Web')]]/@id");
    assert_eq!(strings(&d, &r), ["b3"]);
    // Deeply nested with positional inner predicate.
    let r = both(&d, "/library/book[author[2] = 'Buneman']/@id");
    assert_eq!(strings(&d, &r), ["b3"]);
}

#[test]
fn axes_coverage() {
    let d = doc();
    let r = both(&d, "//price/parent::book/@id");
    assert_eq!(strings(&d, &r), ["b1", "b2", "b3", "b4"]);
    let r = both(&d, "//book[@id='b2']/following-sibling::book/@id");
    assert_eq!(strings(&d, &r), ["b3", "b4"]);
    let r = both(&d, "//book[@id='b2']/following::title");
    assert_eq!(strings(&d, &r).len(), 3);
    let r = both(&d, "//book[@id='b3']/preceding::author");
    assert_eq!(strings(&d, &r), ["Stevens", "Stevens"]);
    let r = both(&d, "//author[. = 'Suciu']/ancestor-or-self::*");
    assert_eq!(names(&d, &r), ["library", "book", "author"]);
    let r = both(&d, "//title/self::title");
    assert_eq!(strings(&d, &r).len(), 5);
    let r = both(&d, "/library/book/descendant-or-self::book/@id");
    assert_eq!(strings(&d, &r), ["b1", "b2", "b3", "b4"]);
    // namespace axis: accepted, empty.
    let r = both(&d, "/library/namespace::*");
    assert_eq!(r, QueryOutput::Nodes(vec![]));
}

#[test]
fn node_type_tests() {
    let d = parse_document("<r>text1<a/><!--c1--><?pi data?>text2</r>").unwrap();
    let r = both(&d, "/r/text()");
    assert_eq!(r.as_nodes().unwrap().len(), 2);
    let r = both(&d, "/r/comment()");
    assert_eq!(r.as_nodes().unwrap().len(), 1);
    let r = both(&d, "/r/processing-instruction()");
    assert_eq!(r.as_nodes().unwrap().len(), 1);
    let r = both(&d, "/r/processing-instruction('pi')");
    assert_eq!(r.as_nodes().unwrap().len(), 1);
    let r = both(&d, "/r/processing-instruction('other')");
    assert_eq!(r.as_nodes().unwrap().len(), 0);
    let r = both(&d, "/r/node()");
    assert_eq!(r.as_nodes().unwrap().len(), 5);
}

#[test]
fn duplicates_eliminated_across_steps() {
    // Classic duplicate generator: parent of every child.
    let d = doc();
    let r = both(&d, "/library/book/author/parent::book");
    assert_eq!(r.as_nodes().unwrap().len(), 4, "six authors, four books");
    let r = both(&d, "//author/ancestor::library");
    assert_eq!(r.as_nodes().unwrap().len(), 1);
    let r = both(&d, "/library/book/descendant::*/ancestor::*/descendant::*");
    // All descendants of library (books/magazine subtrees), each once.
    let all = both(&d, "/library/descendant::*");
    assert_eq!(r.as_nodes().unwrap().len(), all.as_nodes().unwrap().len());
}

#[test]
fn relative_paths_with_context() {
    let d = doc();
    let b3 = match evaluate(&d, "//book[@id='b3']", &TranslateOptions::improved()).unwrap() {
        QueryOutput::Nodes(ns) => ns[0],
        other => panic!("{other:?}"),
    };
    let vars = HashMap::new();
    let r = evaluate_with(&d, "author[2]", &TranslateOptions::improved(), b3, &vars).unwrap();
    assert_eq!(strings(&d, &r), ["Buneman"]);
    let r = evaluate_with(&d, "..", &TranslateOptions::improved(), b3, &vars).unwrap();
    assert_eq!(names(&d, &r), ["library"]);
    let r = evaluate_with(&d, ".", &TranslateOptions::improved(), b3, &vars).unwrap();
    assert_eq!(names(&d, &r), ["book"]);
    // Absolute path ignores the context node's position.
    let r =
        evaluate_with(&d, "/library/magazine", &TranslateOptions::improved(), b3, &vars).unwrap();
    assert_eq!(names(&d, &r), ["magazine"]);
}

#[test]
fn variables() {
    let d = doc();
    let mut vars = HashMap::new();
    vars.insert("y".to_owned(), Value::Str("1999".into()));
    vars.insert("n".to_owned(), Value::Num(2.0));
    let r = evaluate_with(
        &d,
        "/library/book[@year = $y]/@id",
        &TranslateOptions::improved(),
        d.root(),
        &vars,
    )
    .unwrap();
    assert_eq!(strings(&d, &r), ["b4"]);
    let r = evaluate_with(
        &d,
        "/library/book[position() = $n]/@id",
        &TranslateOptions::improved(),
        d.root(),
        &vars,
    )
    .unwrap();
    assert_eq!(strings(&d, &r), ["b2"]);
}

#[test]
fn arithmetic_and_string_functions_e2e() {
    let d = doc();
    assert_eq!(both(&d, "floor(3.7) + ceiling(3.2) + round(2.5)"), QueryOutput::Num(10.0));
    assert_eq!(
        both(&d, "substring(string(//book[1]/title), 1, 3)"),
        QueryOutput::Str("TCP".into())
    );
    assert_eq!(both(&d, "translate('bar', 'abc', 'ABC')"), QueryOutput::Str("BAr".into()));
    assert_eq!(both(&d, "normalize-space('  x   y ')"), QueryOutput::Str("x y".into()));
    assert_eq!(
        both(&d, "substring-before(string(//book[1]/@year), '99')"),
        QueryOutput::Str("1".into())
    );
    assert_eq!(both(&d, "10 mod 3"), QueryOutput::Num(1.0));
    assert_eq!(both(&d, "10 div 4"), QueryOutput::Num(2.5));
    assert_eq!(both(&d, "-(-5)"), QueryOutput::Num(5.0));
}

#[test]
fn last_in_filter_expr_is_whole_sequence() {
    let d = doc();
    let r = both(&d, "(//book/@id)[last()]");
    assert_eq!(strings(&d, &r), ["b4"]);
    let r = both(&d, "(//author)[last()]");
    assert_eq!(strings(&d, &r), ["Bonds"]);
    let r = both(&d, "(//author)[position() > 4]");
    assert_eq!(strings(&d, &r), ["Suciu", "Bonds"]);
}

#[test]
fn boolean_operators_and_or() {
    let d = doc();
    let r = both(&d, "/library/book[@year='1994' or @year='2000']/@id");
    assert_eq!(strings(&d, &r), ["b1", "b3"]);
    let r = both(&d, "/library/book[author='Stevens' and @year='1992']/@id");
    assert_eq!(strings(&d, &r), ["b2"]);
    assert_eq!(both(&d, "true() or (1 div 0 = 0)"), QueryOutput::Bool(true));
}

#[test]
fn complex_paper_style_query() {
    // The paper's §4.2.2 motivating pattern.
    let d = doc();
    let r = both(&d, "/library/book[count(./descendant::author/following::*) > 0]/@id");
    // b4's authors have following nodes (magazine subtree), all books match.
    assert_eq!(strings(&d, &r), ["b1", "b2", "b3", "b4"]);
}

#[test]
fn root_and_document_node() {
    let d = doc();
    let r = both(&d, "/");
    let nodes = r.as_nodes().unwrap();
    assert_eq!(nodes, [NodeId::DOCUMENT]);
    let r = both(&d, "//book/ancestor::node()");
    // library element + document node.
    assert_eq!(r.as_nodes().unwrap().len(), 2);
}

#[test]
fn empty_results_are_empty_not_errors() {
    let d = doc();
    assert_eq!(both(&d, "/nothing"), QueryOutput::Nodes(vec![]));
    assert_eq!(both(&d, "/library/book[99]"), QueryOutput::Nodes(vec![]));
    assert_eq!(both(&d, "count(/x/y/z)"), QueryOutput::Num(0.0));
    assert_eq!(both(&d, "sum(/x/y)"), QueryOutput::Num(0.0));
    assert_eq!(both(&d, "string(/x/y)"), QueryOutput::Str(String::new()));
}

#[test]
fn disk_store_agrees_with_arena() {
    use xmlstore::diskstore::DiskStore;
    use xmlstore::tmp::TempPath;
    let arena = doc();
    let t = TempPath::new(".natix");
    let disk = DiskStore::create_from(&arena, t.path(), 8).unwrap();
    for q in [
        "/library/book/title",
        "/library/book[position() = last()]/@id",
        "//book[author = 'Stevens']/@id",
        "count(//author)",
        "/library/book[price < 40]/@id",
    ] {
        let a = evaluate(&arena, q, &TranslateOptions::improved()).unwrap();
        let d = evaluate(&disk, q, &TranslateOptions::improved()).unwrap();
        // NodeIds are assigned identically by construction.
        assert_eq!(a, d, "{q}");
    }
    assert!(disk.buffer_stats().misses > 0, "disk store must read pages");
}

#[test]
fn profiled_execution_counts_operator_work() {
    use compiler::compile;
    let d = doc();
    let compiled = compile("/library/book/title", &TranslateOptions::improved()).unwrap();
    let (mut phys, profile) = nqe::build_physical_profiled(&compiled);
    let out = phys.execute(&d, &HashMap::new(), d.root()).unwrap();
    assert_eq!(out.as_nodes().unwrap().len(), 4);
    let report = profile.report();
    assert!(report.contains("Υ["), "{report}");
    // The title Υ produced exactly the four result tuples.
    assert!(
        profile
            .entries
            .iter()
            .any(|e| { e.label.contains("child::title") && e.stats.lock().tuples == 4 }),
        "{report}"
    );
    // Everything was opened exactly once (stacked translation: no d-joins).
    assert!(profile.entries.iter().all(|e| e.stats.lock().opens == 1), "{report}");
    assert!(profile.total_tuples() > 0);

    // Canonical translation re-opens dependent branches per left tuple.
    let compiled = compile("/library/book/title", &TranslateOptions::canonical()).unwrap();
    let (mut phys, profile) = nqe::build_physical_profiled(&compiled);
    phys.execute(&d, &HashMap::new(), d.root()).unwrap();
    assert!(
        profile.entries.iter().any(|e| e.stats.lock().opens > 1),
        "canonical plans must show repeated opens:\n{}",
        profile.report()
    );
}
