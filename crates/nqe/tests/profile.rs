//! Profiler integration tests: the timed operator profile's counters
//! checked against hand-computed values on tiny documents, plus the
//! serde-free JSON round-trip and the report renderer's alignment.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use std::time::Duration;

use compiler::TranslateOptions;
use nqe::profile::ProfileEntry;
use nqe::{explain_analyze, AnalyzeReport, Json, OpStats, Profile};
use xmlstore::{parse_document, ArenaStore, NoIndex, XmlStore};

/// `<r><a><b/><b/><b/><b/></a></r>` — four `b` leaves under one `a`.
fn doc() -> ArenaStore {
    parse_document("<r><a><b/><b/><b/><b/></a></r>").unwrap()
}

fn analyze(store: &ArenaStore, query: &str, opts: &TranslateOptions) -> AnalyzeReport {
    let (_, report) = explain_analyze(store, query, opts, store.root(), &HashMap::new()).unwrap();
    report
}

/// Indices of entry `i`'s direct children in the pre-order entry list.
fn children(profile: &Profile, i: usize) -> Vec<usize> {
    let depth = profile.entries[i].depth;
    let mut out = Vec::new();
    for (j, e) in profile.entries.iter().enumerate().skip(i + 1) {
        if e.depth <= depth {
            break;
        }
        if e.depth == depth + 1 {
            out.push(j);
        }
    }
    out
}

fn gauge(entry: &ProfileEntry, name: &str) -> Option<u64> {
    entry.stats.lock().gauges.iter().find(|(k, _)| *k == name).map(|&(_, v)| v)
}

/// The d-join re-opens its dependent side once per left tuple (§3.3.2):
/// for every `<>` in the plan, the dependent operator's `opens` and the
/// d-join's `reopens` gauge must both equal the left input's tuple count.
#[test]
fn djoin_dependent_opens_equal_left_tuple_count() {
    let store = doc();
    // The canonical translation keeps one d-join per location step.
    let report = analyze(&store, "/r/a/b/parent::a", &TranslateOptions::canonical());
    let profile = &report.profile;

    let mut djoins = 0;
    let mut saw_multi_tuple_left = false;
    for (i, e) in profile.entries.iter().enumerate() {
        if e.label != "<>" {
            continue;
        }
        djoins += 1;
        let kids = children(profile, i);
        assert_eq!(kids.len(), 2, "d-join has a left input and a dependent");
        let left_tuples = profile.entries[kids[0]].stats.lock().tuples;
        let dependent_opens = profile.entries[kids[1]].stats.lock().opens;
        assert_eq!(
            dependent_opens, left_tuples,
            "dependent of d-join #{djoins} must re-open once per left tuple"
        );
        assert_eq!(gauge(e, "reopens"), Some(left_tuples));
        if left_tuples > 1 {
            saw_multi_tuple_left = true;
        }
    }
    assert!(djoins >= 4, "canonical plan for a 4-step path d-joins every step");
    assert!(
        saw_multi_tuple_left,
        "at least one d-join (the parent::a step over four b's) re-opens repeatedly"
    );
}

/// MemoX counters on a hand-computed query: the four outer `b` contexts
/// share one parent `a`, so each 𝔐 keyed on that `a` records once and
/// replays three times (§4.2.2).
#[test]
fn memox_hit_miss_counters_match_hand_computed_query() {
    let store = doc();
    let report = analyze(
        &store,
        "/r/a/b[count(parent::a/child::b/parent::a/child::b) > 0]",
        &TranslateOptions::improved(),
    );
    assert_eq!(report.result_count, 4, "all four b's satisfy the predicate");

    let memos: Vec<&ProfileEntry> =
        report.profile.entries.iter().filter(|e| e.label.starts_with('𝔐')).collect();
    assert_eq!(memos.len(), 2, "both parent/child pairs of the inner path memoize");
    for m in memos {
        // Opened once per duplicate context: 4 b's collapse onto 1 a.
        assert_eq!(m.stats.lock().opens, 4, "{}", m.label);
        assert_eq!(gauge(m, "memo_misses"), Some(1), "{}", m.label);
        assert_eq!(gauge(m, "memo_hits"), Some(3), "{}", m.label);
        assert_eq!(gauge(m, "memo_entries"), Some(1), "{}", m.label);
        // The recorded sequence is the four b's of the single a.
        assert_eq!(gauge(m, "memo_tuples"), Some(4), "{}", m.label);
    }
}

/// The same query with memoization disabled recomputes instead: the
/// ablation observable behind the E6b' experiment.
#[test]
fn memo_off_has_no_memo_operators() {
    let store = doc();
    let no_memo = TranslateOptions { memoize_inner: false, ..TranslateOptions::improved() };
    let report =
        analyze(&store, "/r/a/b[count(parent::a/child::b/parent::a/child::b) > 0]", &no_memo);
    assert_eq!(report.result_count, 4);
    assert!(report.profile.entries.iter().all(|e| !e.label.starts_with('𝔐')));
}

/// The JSON export round-trips through the hand-rolled writer and parser
/// (serde-free), both compact and pretty.
#[test]
fn analyze_json_round_trips() {
    let store = doc();
    let report =
        analyze(&store, "/r/a/b[count(parent::a/child::b) > 0]", &TranslateOptions::improved());
    let json = report.to_json();
    assert_eq!(Json::parse(&json.to_string()).unwrap(), json, "compact round-trip");
    assert_eq!(Json::parse(&json.pretty()).unwrap(), json, "pretty round-trip");
    // Gauges survive the trip with their values intact.
    let back = Json::parse(&json.pretty()).unwrap();
    let ops = back.get("operators").and_then(Json::as_arr).unwrap();
    let memo = ops
        .iter()
        .find(|o| o.get("label").and_then(Json::as_str).is_some_and(|l| l.starts_with('𝔐')))
        .expect("memo operator in export");
    assert_eq!(
        memo.get("gauges").and_then(|g| g.get("memo_hits")).and_then(Json::as_num),
        Some(3.0)
    );
}

/// Sum of one gauge across every operator of a report.
fn gauge_sum(report: &AnalyzeReport, name: &str) -> u64 {
    report.profile.entries.iter().filter_map(|e| gauge(e, name)).sum()
}

/// Υ on an indexed store serves interval axes by range scan; hiding the
/// index behind `NoIndex` flips every context to a cursor fallback. Both
/// counters surface in the text table and the JSON export.
#[test]
fn unnest_gauges_report_range_scans_and_cursor_fallbacks() {
    let store = doc();
    let report = analyze(&store, "//b", &TranslateOptions::improved());
    assert!(gauge_sum(&report, "range_scans") > 0, "descendant steps use the index");
    assert_eq!(gauge_sum(&report, "cursor_fallbacks"), 0);
    assert!(report.text().contains("range_scans="), "gauge visible in the text report");
    let json = report.to_json().pretty();
    assert!(json.contains("\"range_scans\""), "gauge visible in the JSON export");
    assert!(json.contains("\"cursor_fallbacks\""));

    let plain = NoIndex(&store);
    let (_, report) = explain_analyze(
        &plain,
        "//b",
        &TranslateOptions::improved(),
        plain.root(),
        &HashMap::new(),
    )
    .unwrap();
    assert_eq!(gauge_sum(&report, "range_scans"), 0, "no index, no range scans");
    assert!(gauge_sum(&report, "cursor_fallbacks") > 0);
}

/// Π^D keys node values through the rank bitset on indexed stores and
/// through the hash seen-set otherwise; the two key counters make the
/// choice observable per operator.
#[test]
fn dedup_gauges_report_bitset_vs_hash_keys() {
    let store = doc();
    let report = analyze(&store, "//b/parent::a", &TranslateOptions::improved());
    assert!(gauge_sum(&report, "bitset_keys") > 0, "node keys land in the bitset");
    assert_eq!(gauge_sum(&report, "hash_keys"), 0);
    assert!(report.to_json().pretty().contains("\"bitset_keys\""));

    let plain = NoIndex(&store);
    let (_, report) = explain_analyze(
        &plain,
        "//b/parent::a",
        &TranslateOptions::improved(),
        plain.root(),
        &HashMap::new(),
    )
    .unwrap();
    assert_eq!(gauge_sum(&report, "bitset_keys"), 0);
    assert!(gauge_sum(&report, "hash_keys") > 0, "no index, hash seen-set");
}

fn entry(label: &str, depth: usize, opens: u64, tuples: u64, nanos: u64) -> ProfileEntry {
    ProfileEntry {
        label: label.to_owned(),
        depth,
        stats: Arc::new(Mutex::new(OpStats { opens, tuples, nanos, gauges: Vec::new() })),
    }
}

/// `Profile::report()` computes column widths, so counters of any
/// magnitude stay aligned: the operator column starts at the same offset
/// in every row.
#[test]
fn report_columns_stay_aligned_across_magnitudes() {
    let profile = Profile {
        entries: vec![
            entry("Top", 0, 1, 9_999_999, 2_000_000_000),
            entry("Mid", 1, 1_234_567, 3, 1_999_999_999),
            entry("Leaf", 2, 1, 1, 7),
        ],
        parallel: Vec::new(),
    };
    let report = profile.report();
    let lines: Vec<&str> = report.lines().collect();
    assert_eq!(lines.len(), 4);
    let offset = lines[0].find("operator").expect("header names the operator column");
    assert_eq!(lines[1].find("Top"), Some(offset));
    assert_eq!(lines[2].find("Mid"), Some(offset + 2), "depth 1 indents by two");
    assert_eq!(lines[3].find("Leaf"), Some(offset + 4), "depth 2 indents by four");
}

/// The aggregate helpers: total_time sums the root operators only,
/// self time subtracts direct children, max_depth is the deepest level.
#[test]
fn profile_helpers() {
    let profile = Profile {
        entries: vec![
            entry("A", 0, 1, 2, 1000),
            entry("B", 1, 1, 2, 600),
            entry("C", 2, 1, 2, 100),
            entry("D", 1, 1, 2, 300),
        ],
        parallel: Vec::new(),
    };
    assert_eq!(profile.total_time(), Duration::from_nanos(1000));
    assert_eq!(profile.max_depth(), 2);
    assert_eq!(profile.total_tuples(), 8);
    // A's self time excludes its direct children B and D but not C.
    assert_eq!(profile.self_nanos(), vec![100, 500, 100, 300]);
}
